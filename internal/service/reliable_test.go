package service

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/swp"
)

func reliableTestSamples(n int) []collector.Sample {
	out := make([]collector.Sample, n)
	for i := range out {
		out[i] = collector.Sample{
			Key: packet.FlowKey{
				Src: packet.Addr(0x0a000001 + i%17), Dst: packet.Addr(0x0a000100 + i%13),
				SrcPort: uint16(2000 + i%31), DstPort: 443, Proto: 6,
			},
			Est:  time.Duration(i+1) * time.Microsecond,
			True: time.Duration(i+2) * time.Microsecond,
		}
	}
	return out
}

// runExport streams samples into a fresh in-process server through client,
// waits for full ingestion, and returns the server still running.
func runExport(t *testing.T, client func(net.Conn) *Client, samples []collector.Sample) *Server {
	t.Helper()
	srv, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	clientEnd, serverEnd := net.Pipe()
	srv.ServeConn(serverEnd)
	c := client(clientEnd)
	if err := c.Hello("exporter-1"); err != nil {
		t.Fatalf("Hello: %v", err)
	}
	for _, smp := range samples {
		if err := c.Add(smp.Key, smp.Est, smp.True); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.coll.SamplesIngested() < uint64(len(samples)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.coll.SamplesIngested(); got != uint64(len(samples)) {
		t.Fatalf("ingested %d of %d samples", got, len(samples))
	}
	return srv
}

// TestReliableClientEquivalence is the service-level delivery property: a
// reliable client whose outbound segments are dropped, duplicated and
// reordered must land the collector in bit-identical state to a raw client
// on a clean pipe.
func TestReliableClientEquivalence(t *testing.T) {
	samples := reliableTestSamples(3000)

	rawSrv := runExport(t, func(conn net.Conn) *Client {
		return NewClient(conn, 64)
	}, samples)
	defer rawSrv.Shutdown(context.Background())

	relSrv := runExport(t, func(conn net.Conn) *Client {
		return NewReliableClient(conn, 64, swp.Config{
			MaxPayload: 512,
			RTO:        10 * time.Millisecond,
			MaxRTO:     100 * time.Millisecond,
			MaxRetries: 64,
		}, &swp.ImpairConfig{Seed: 7, Drop: 0.15, Dup: 0.1, Reorder: 0.1})
	}, samples)
	defer relSrv.Shutdown(context.Background())

	want, got := rawSrv.Snapshot(), relSrv.Snapshot()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("collector state diverged: raw %d flows, reliable-lossy %d flows", len(want), len(got))
	}

	if relSrv.relConnsTotal.Load() != 1 {
		t.Errorf("reliable connections = %d, want 1", relSrv.relConnsTotal.Load())
	}
	if relSrv.tSegments.Load() == 0 {
		t.Error("no transport segments accounted")
	}
	if relSrv.tDuplicates.Load() == 0 {
		t.Error("lossy run accounted zero duplicates — impairment not exercised")
	}

	// The per-exporter accounting must surface on the HTTP API.
	rec := httptest.NewRecorder()
	relSrv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"rlird_reliable_connections_total 1",
		"rlird_router_transport_segments_total{router=\"exporter-1\"}",
		"rlird_router_transport_duplicates_total{router=\"exporter-1\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDecodeErrorKinds checks a corrupt stream is counted by exporter and
// corruption kind before the connection drops, and that both /metrics and
// /healthz expose the breakdown.
func TestDecodeErrorKinds(t *testing.T) {
	srv, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Shutdown(context.Background())

	send := func(payload []byte) {
		clientEnd, serverEnd := net.Pipe()
		srv.ServeConn(serverEnd)
		if _, err := clientEnd.Write(payload); err != nil {
			t.Fatalf("Write: %v", err)
		}
		clientEnd.Close()
	}
	// Wrong magic entirely.
	send([]byte("GARBAGE-NOT-A-FRAME"))
	// A valid hello followed by a frame cut off mid-body.
	good := collector.AppendHello(nil, "flaky-exporter")
	frame := collector.AppendSamples(nil, reliableTestSamples(4))
	send(append(good, frame[:len(frame)-5]...))

	deadline := time.Now().Add(5 * time.Second)
	for srv.decodeErrs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.decodeErrs.Load(); got != 2 {
		t.Fatalf("decode errors = %d, want 2", got)
	}

	kinds := map[string]uint64{}
	for k, v := range srv.decodeErrKinds() {
		kinds[k.kind] += v
	}
	if kinds["bad_magic"] != 1 || kinds["truncated"] != 1 {
		t.Errorf("kind breakdown = %v, want bad_magic:1 truncated:1", kinds)
	}
	// The truncated stream spoke its hello first, so the error must be
	// attributed to the declared exporter name, not the socket address.
	found := false
	for k := range srv.decodeErrKinds() {
		if k.router == "flaky-exporter" && k.kind == "truncated" {
			found = true
		}
	}
	if !found {
		t.Errorf("truncated error not attributed to flaky-exporter: %v", srv.decodeErrKinds())
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, `rlird_decode_error_kinds_total{router="flaky-exporter",kind="truncated"} 1`) {
		t.Errorf("/metrics missing labeled decode error counter:\n%s", body)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if body := rec.Body.String(); !strings.Contains(body, `"decode_error_kinds"`) {
		t.Errorf("/healthz missing decode_error_kinds:\n%s", body)
	}
}
