package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/scenario"
)

// partitionByFlow splits a sample stream across n connections by flow hash,
// preserving per-flow order — the collector's determinism contract requires
// all of one flow's samples to arrive through one producer, and this is the
// same partitioning cmd/loadgen uses.
func partitionByFlow(samples []collector.Sample, n int) [][]collector.Sample {
	parts := make([][]collector.Sample, n)
	for _, smp := range samples {
		i := int(smp.Key.FastHash() % uint64(n))
		parts[i] = append(parts[i], smp)
	}
	return parts
}

// TestServiceMatchesBatchEngine is the tentpole equivalence: a registered
// scenario's export stream, replayed over four concurrent connections into
// a live service, must answer /flows and /comparison with exactly the batch
// engine's numbers for the same seed. Welford accumulators are
// order-sensitive across flows but the collector shards per flow, so
// per-flow aggregates are bit-identical no matter how the four connections
// interleave.
func TestServiceMatchesBatchEngine(t *testing.T) {
	sc, ok := scenario.Get("baseline-tandem")
	if !ok {
		t.Fatal("baseline-tandem not registered")
	}
	tr, err := scenario.Export(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("empty export")
	}

	s, err := New(Config{Listen: "127.0.0.1:0", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	const conns = 4
	parts := partitionByFlow(tr.Samples, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		c, err := Dial("tcp", s.Addr().String(), 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			defer c.Close()
			if err := c.Hello(fmt.Sprintf("replay-%d", i)); err != nil {
				t.Error(err)
				return
			}
			for _, smp := range parts[i] {
				if err := c.Add(smp.Key, smp.Est, smp.True); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	waitIngested(t, s, uint64(len(tr.Samples)))

	// /flows ≡ the batch run's fleet table, field for field.
	var flows []FlowJSON
	getJSON(t, s, "/flows", &flows)
	fleet := tr.Result.Fleet
	if len(flows) != len(fleet) {
		t.Fatalf("/flows has %d rows, batch fleet has %d", len(flows), len(fleet))
	}
	for i := range fleet {
		want := flowJSON(&fleet[i])
		if flows[i] != want {
			t.Fatalf("flow %d diverged:\nservice %+v\nbatch   %+v", i, flows[i], want)
		}
	}

	// /comparison ≡ the streaming comparison of the batch fleet.
	var got []ComparisonJSON
	getJSON(t, s, "/comparison", &got)
	want := comparisonJSON(measure.CompareFlowAggs("rli", fleet))
	if len(got) != 1 {
		t.Fatalf("/comparison has %d rows", len(got))
	}
	if got[0].Estimator != want.Estimator || got[0].Flows != want.Flows ||
		got[0].Samples != want.Samples || got[0].AggMeanNs != want.AggMeanNs ||
		got[0].AggSamples != want.AggSamples ||
		!floatPtrEq(got[0].MedianRelErr, want.MedianRelErr) ||
		!floatPtrEq(got[0].P99RelErr, want.P99RelErr) ||
		!floatPtrEq(got[0].AggRelErr, want.AggRelErr) {
		t.Fatalf("/comparison diverged:\nservice %s\nbatch   %s", cmpString(got[0]), cmpString(want))
	}

	// The batch run's own median relative error must survive the trip: the
	// scenario invariant bound applies to the streamed view too.
	if *got[0].MedianRelErr > 0.60 {
		t.Fatalf("streamed median rel err %.4f outside the scenario bound", *got[0].MedianRelErr)
	}
}

func floatPtrEq(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func cmpString(c ComparisonJSON) string {
	f := func(p *float64) string {
		if p == nil {
			return "null"
		}
		return fmt.Sprintf("%.17g", *p)
	}
	return fmt.Sprintf("{est=%s flows=%d samples=%d med=%s p99=%s aggMean=%d aggN=%d aggErr=%s}",
		c.Estimator, c.Flows, c.Samples, f(c.MedianRelErr), f(c.P99RelErr), c.AggMeanNs, c.AggSamples, f(c.AggRelErr))
}

// BenchmarkServiceIngest4Conns is the soak benchmark bench.sh records: four
// concurrent connections streaming pre-encoded sample frames over loopback
// TCP into the full service path (frame reader -> router aggregates ->
// sharded collector). The samples/s metric is the acceptance number for
// BENCH_4.json.
func BenchmarkServiceIngest4Conns(b *testing.B) {
	s, err := New(Config{Listen: "127.0.0.1:0", Shards: 4, Depth: 64})
	if err != nil {
		b.Fatal(err)
	}
	// Safety net for b.Fatal paths; the normal path shuts down explicitly
	// below and this second call is an idempotent no-op.
	defer s.Shutdown(context.Background())

	const (
		conns      = 4
		batch      = 512
		framesPerC = 8
		perChunk   = batch * framesPerC
	)
	// Pre-encode each connection's wire chunk: 8 frames of 512 samples.
	chunks := make([][]byte, conns)
	for i := range chunks {
		var wire []byte
		samples := genSamples(perChunk, 256)
		for f := 0; f < framesPerC; f++ {
			wire = collector.AppendSamples(wire, samples[f*batch:(f+1)*batch])
		}
		chunks[i] = wire
	}

	clients := make([]*Client, conns)
	for i := range clients {
		if clients[i], err = Dial("tcp", s.Addr().String(), 0); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < b.N; n++ {
				if _, err := clients[i].conn.Write(chunks[i]); err != nil {
					b.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	total := uint64(b.N) * conns * uint64(perChunk)
	for s.Collector().SamplesIngested() < total {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
	// Close the connections before Shutdown or the drain window waits out
	// its full timeout on four idle-but-open handlers — pure teardown sleep
	// multiplied by every b.N scaling pass.
	for _, c := range clients {
		c.Close()
	}
	if err := s.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
}
