package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/measure"
	"github.com/netmeasure/rlir/internal/queryapi"
)

// The JSON row types live in internal/queryapi so the fleet front-end
// (cmd/rlirfleet) renders merged answers through exactly the same code
// paths a single rlird uses. The aliases keep this package's — and the
// root package's — historical names working.
type (
	// FlowJSON is one /flows row.
	FlowJSON = queryapi.FlowJSON
	// RouterJSON is one /routers row.
	RouterJSON = queryapi.RouterJSON
	// ComparisonJSON is the /comparison row shape.
	ComparisonJSON = queryapi.ComparisonJSON
	// HealthJSON is the /healthz response.
	HealthJSON = queryapi.HealthJSON
	// RollupJSON is the /rollup response.
	RollupJSON = queryapi.RollupJSON
)

func flowJSON(a *collector.FlowAgg) FlowJSON { return queryapi.FlowRow(a) }

func comparisonJSON(c measure.Comparison) ComparisonJSON { return queryapi.ComparisonRow(c) }

// Handler returns the query API. It is safe to serve before, during and
// after Shutdown — post-shutdown it answers from the collector's final
// state (healthz reports "draining"/"stopped").
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/flows", s.handleFlows)
	mux.HandleFunc("/routers", s.handleRouters)
	mux.HandleFunc("/rollup", s.handleRollup)
	mux.HandleFunc("/comparison", s.handleComparison)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	queryapi.WriteJSON(w, status, v)
}

// handleFlows serves the per-flow table, sorted by flow key. ?limit=N caps
// the row count (the table can hold millions of flows).
func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	snap := s.coll.Snapshot()
	limit := len(snap)
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < limit {
			limit = n
		}
	}
	rows := make([]FlowJSON, 0, limit)
	for i := 0; i < limit; i++ {
		rows = append(rows, flowJSON(&snap[i]))
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleRouters(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.routers))
	for n := range s.routers {
		names = append(names, n)
	}
	aggs := make([]*routerAgg, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		aggs = append(aggs, s.routers[n])
	}
	s.mu.Unlock()

	rows := make([]RouterJSON, 0, len(names))
	for i, agg := range aggs {
		agg.mu.Lock()
		rows = append(rows, RouterJSON{
			Router:              names[i],
			Frames:              agg.frames,
			Samples:             agg.samples,
			Records:             agg.records,
			Bytes:               agg.bytes,
			EstMeanNs:           agg.est.Mean(),
			EstP50Ns:            int64(agg.hist.Quantile(0.5)),
			EstP99Ns:            int64(agg.hist.Quantile(0.99)),
			TrueMeanNs:          agg.truth.Mean(),
			Reliable:            agg.reliable,
			TransportSegments:   agg.tSegments,
			TransportDuplicates: agg.tDuplicates,
			TransportOutOfOrder: agg.tOutOfOrder,
			TransportGaps:       agg.tGaps,
		})
		agg.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, rows)
}

// handleRollup serves the aggregation tiers below the live flow table —
// the class and router aggregates that evicted/expired flows folded into —
// plus the eviction accounting. With no eviction configured the tiers are
// empty and only the accounting fields are meaningful.
func (s *Server) handleRollup(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, queryapi.RollupRows(s.coll.RollupSnapshot()))
}

func (s *Server) handleComparison(w http.ResponseWriter, r *http.Request) {
	cmp := measure.CompareFlowAggs("rli", s.coll.Snapshot())
	writeJSON(w, http.StatusOK, []ComparisonJSON{comparisonJSON(cmp)})
}

// handleSnapshot serves the raw flow-table state (full accumulator
// internals, not derived summaries) — the endpoint the fleet front-end
// gathers and merges exactly. See queryapi.FlowState.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.coll.Snapshot()
	writeJSON(w, http.StatusOK,
		queryapi.SnapshotOf(snap, s.coll.SamplesIngested(), s.coll.RecordsIngested()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.closed.Load() {
		status, code = "stopped", http.StatusServiceUnavailable
	} else if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	sps, rps := s.window.rates()
	var kinds map[string]uint64
	if by := s.decodeErrKinds(); len(by) > 0 {
		kinds = make(map[string]uint64, len(by))
		for k, v := range by {
			kinds[k.kind] += v
		}
	}
	ts := s.coll.Stats()
	writeJSON(w, code, HealthJSON{
		Status:              status,
		UptimeS:             time.Since(s.start).Seconds(),
		Flows:               ts.Flows,
		Samples:             s.coll.SamplesIngested(),
		Records:             s.coll.RecordsIngested(),
		Frames:              s.frames.Load(),
		Conns:               s.activeConns(),
		ConnsTotal:          s.connsTotal.Load(),
		DecodeErrors:        s.decodeErrs.Load(),
		SampleRate1W:        sps,
		RecordRate1W:        rps,
		WindowSeconds:       s.cfg.Window.Seconds(),
		DecodeErrorKinds:    kinds,
		ReliableConns:       s.relConnsTotal.Load(),
		TransportSegments:   s.tSegments.Load(),
		TransportDuplicates: s.tDuplicates.Load(),
		TransportOutOfOrder: s.tOutOfOrder.Load(),
		TransportGaps:       s.tGaps.Load(),
		FlowsEvicted:        ts.Evicted,
		FlowsExpired:        ts.Expired,
		FlowClasses:         ts.Classes,
	})
}

// handleMetrics serves the Prometheus text exposition format: counters for
// the ingest totals, gauges for the live state and the rolling-window
// rates.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sps, rps := s.window.rates()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP rlird_samples_total Latency samples ingested.\n# TYPE rlird_samples_total counter\n")
	p("rlird_samples_total %d\n", s.coll.SamplesIngested())
	p("# HELP rlird_records_total NetFlow records ingested.\n# TYPE rlird_records_total counter\n")
	p("rlird_records_total %d\n", s.coll.RecordsIngested())
	p("# HELP rlird_frames_total Wire frames decoded.\n# TYPE rlird_frames_total counter\n")
	p("rlird_frames_total %d\n", s.frames.Load())
	p("# HELP rlird_decode_errors_total Connections ended by a codec error.\n# TYPE rlird_decode_errors_total counter\n")
	p("rlird_decode_errors_total %d\n", s.decodeErrs.Load())
	if by := s.decodeErrKinds(); len(by) > 0 {
		keys := make([]decodeErrKey, 0, len(by))
		for k := range by {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].router != keys[j].router {
				return keys[i].router < keys[j].router
			}
			return keys[i].kind < keys[j].kind
		})
		p("# HELP rlird_decode_error_kinds_total Decode errors by exporter and corruption kind.\n# TYPE rlird_decode_error_kinds_total counter\n")
		for _, k := range keys {
			p("rlird_decode_error_kinds_total{router=%q,kind=%q} %d\n", k.router, k.kind, by[k])
		}
	}
	p("# HELP rlird_connections_total Exporter connections accepted.\n# TYPE rlird_connections_total counter\n")
	p("rlird_connections_total %d\n", s.connsTotal.Load())
	p("# HELP rlird_connections_active Exporter connections currently streaming.\n# TYPE rlird_connections_active gauge\n")
	p("rlird_connections_active %d\n", s.activeConns())
	p("# HELP rlird_reliable_connections_total Connections that spoke the swp reliable framing.\n# TYPE rlird_reliable_connections_total counter\n")
	p("rlird_reliable_connections_total %d\n", s.relConnsTotal.Load())
	p("# HELP rlird_transport_segments_total Data segments received over reliable connections.\n# TYPE rlird_transport_segments_total counter\n")
	p("rlird_transport_segments_total %d\n", s.tSegments.Load())
	p("# HELP rlird_transport_duplicates_total Duplicate segments dropped (retransmissions whose original arrived).\n# TYPE rlird_transport_duplicates_total counter\n")
	p("rlird_transport_duplicates_total %d\n", s.tDuplicates.Load())
	p("# HELP rlird_transport_out_of_order_total Segments reorder-buffered before in-order delivery.\n# TYPE rlird_transport_out_of_order_total counter\n")
	p("rlird_transport_out_of_order_total %d\n", s.tOutOfOrder.Load())
	p("# HELP rlird_transport_gaps_total Sequence-gap episodes observed by reliable receivers.\n# TYPE rlird_transport_gaps_total counter\n")
	p("rlird_transport_gaps_total %d\n", s.tGaps.Load())
	s.mu.Lock()
	names := make([]string, 0, len(s.routers))
	for n := range s.routers {
		names = append(names, n)
	}
	sort.Strings(names)
	perRouter := make([]struct {
		name             string
		segs, dups, gaps uint64
	}, 0, len(names))
	for _, n := range names {
		agg := s.routers[n]
		agg.mu.Lock()
		if agg.reliable {
			perRouter = append(perRouter, struct {
				name             string
				segs, dups, gaps uint64
			}{n, agg.tSegments, agg.tDuplicates, agg.tGaps})
		}
		agg.mu.Unlock()
	}
	s.mu.Unlock()
	if len(perRouter) > 0 {
		p("# HELP rlird_router_transport_segments_total Data segments received, by exporter.\n# TYPE rlird_router_transport_segments_total counter\n")
		for _, r := range perRouter {
			p("rlird_router_transport_segments_total{router=%q} %d\n", r.name, r.segs)
		}
		p("# HELP rlird_router_transport_duplicates_total Duplicate segments dropped, by exporter.\n# TYPE rlird_router_transport_duplicates_total counter\n")
		for _, r := range perRouter {
			p("rlird_router_transport_duplicates_total{router=%q} %d\n", r.name, r.dups)
		}
		p("# HELP rlird_router_transport_gaps_total Sequence-gap episodes, by exporter.\n# TYPE rlird_router_transport_gaps_total counter\n")
		for _, r := range perRouter {
			p("rlird_router_transport_gaps_total{router=%q} %d\n", r.name, r.gaps)
		}
	}
	ts := s.coll.Stats()
	p("# HELP rlird_flows Distinct flows aggregated.\n# TYPE rlird_flows gauge\n")
	p("rlird_flows %d\n", ts.Flows)
	p("# HELP rlird_flows_tracked Flows currently tracked individually (excludes rollup tiers).\n# TYPE rlird_flows_tracked gauge\n")
	p("rlird_flows_tracked %d\n", ts.Flows)
	p("# HELP rlird_flows_evicted_total Flows folded into rollup tiers by the max-flows cap.\n# TYPE rlird_flows_evicted_total counter\n")
	p("rlird_flows_evicted_total %d\n", ts.Evicted)
	p("# HELP rlird_flows_expired_total Flows folded into rollup tiers by idle-window expiry.\n# TYPE rlird_flows_expired_total counter\n")
	p("rlird_flows_expired_total %d\n", ts.Expired)
	p("# HELP rlird_flow_classes Class-tier rollup aggregates currently held.\n# TYPE rlird_flow_classes gauge\n")
	p("rlird_flow_classes %d\n", ts.Classes)
	p("# HELP rlird_shards Collector shard goroutines.\n# TYPE rlird_shards gauge\n")
	p("rlird_shards %d\n", s.coll.Shards())
	p("# HELP rlird_ingest_samples_per_second Rolling-window sample ingest rate.\n# TYPE rlird_ingest_samples_per_second gauge\n")
	p("rlird_ingest_samples_per_second %g\n", sps)
	p("# HELP rlird_ingest_records_per_second Rolling-window record ingest rate.\n# TYPE rlird_ingest_records_per_second gauge\n")
	p("rlird_ingest_records_per_second %g\n", rps)
	p("# HELP rlird_uptime_seconds Time since the service started.\n# TYPE rlird_uptime_seconds gauge\n")
	p("rlird_uptime_seconds %g\n", time.Since(s.start).Seconds())
}
