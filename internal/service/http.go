package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/measure"
)

// FlowJSON is one /flows row: a collector flow aggregate flattened for the
// wire. Durations are nanosecond integers, like the spec JSON front-end.
type FlowJSON struct {
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Proto   uint8  `json:"proto"`
	// Samples counts the per-packet estimates behind the aggregate.
	Samples int64 `json:"samples"`
	// EstMeanNs / EstStdNs / EstP50Ns / EstP99Ns summarize the estimated
	// delay distribution.
	EstMeanNs float64 `json:"est_mean_ns"`
	EstStdNs  float64 `json:"est_std_ns"`
	EstP50Ns  int64   `json:"est_p50_ns"`
	EstP99Ns  int64   `json:"est_p99_ns"`
	// TrueMeanNs is the in-band ground-truth mean (zero when the stream
	// carries no truth, as a real deployment's would not).
	TrueMeanNs float64 `json:"true_mean_ns"`
	// Packets / Bytes / FirstNs / LastNs mirror NetFlow record fields (zero
	// when no exporter mentioned the flow).
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
	FirstNs int64  `json:"first_ns,omitempty"`
	LastNs  int64  `json:"last_ns,omitempty"`
}

func flowJSON(a *collector.FlowAgg) FlowJSON {
	return FlowJSON{
		Src:        a.Key.Src.String(),
		Dst:        a.Key.Dst.String(),
		SrcPort:    a.Key.SrcPort,
		DstPort:    a.Key.DstPort,
		Proto:      uint8(a.Key.Proto),
		Samples:    a.Est.N(),
		EstMeanNs:  a.Est.Mean(),
		EstStdNs:   a.Est.Std(),
		EstP50Ns:   int64(a.Hist.Quantile(0.5)),
		EstP99Ns:   int64(a.Hist.Quantile(0.99)),
		TrueMeanNs: a.True.Mean(),
		Packets:    a.Packets,
		Bytes:      a.Bytes,
		FirstNs:    int64(a.First),
		LastNs:     int64(a.Last),
	}
}

// RouterJSON is one /routers row: a connected exporter's aggregate view.
type RouterJSON struct {
	Router  string `json:"router"`
	Frames  uint64 `json:"frames"`
	Samples uint64 `json:"samples"`
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes"`
	// EstMeanNs / EstP50Ns / EstP99Ns summarize the router's streamed
	// estimates; TrueMeanNs its in-band truth.
	EstMeanNs  float64 `json:"est_mean_ns"`
	EstP50Ns   int64   `json:"est_p50_ns"`
	EstP99Ns   int64   `json:"est_p99_ns"`
	TrueMeanNs float64 `json:"true_mean_ns"`
	// Reliable is true when the exporter connected over the swp transport;
	// the remaining fields are its receiver-side loss accounting: segments
	// received, duplicates dropped (retransmissions whose original
	// arrived), segments reorder-buffered, and gap episodes.
	Reliable            bool   `json:"reliable,omitempty"`
	TransportSegments   uint64 `json:"transport_segments,omitempty"`
	TransportDuplicates uint64 `json:"transport_duplicates,omitempty"`
	TransportOutOfOrder uint64 `json:"transport_out_of_order,omitempty"`
	TransportGaps       uint64 `json:"transport_gaps,omitempty"`
}

// ComparisonJSON is the /comparison response: measure.CompareFlowAggs with
// NaN (undefined) errors encoded as JSON nulls.
type ComparisonJSON struct {
	Estimator    string   `json:"estimator"`
	Flows        int      `json:"flows"`
	Samples      int64    `json:"samples"`
	MedianRelErr *float64 `json:"median_rel_err"`
	P99RelErr    *float64 `json:"p99_rel_err"`
	AggMeanNs    int64    `json:"agg_mean_ns"`
	AggSamples   int64    `json:"agg_samples"`
	AggRelErr    *float64 `json:"agg_rel_err"`
}

func comparisonJSON(c measure.Comparison) ComparisonJSON {
	opt := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return ComparisonJSON{
		Estimator:    c.Estimator,
		Flows:        c.Flows,
		Samples:      c.Samples,
		MedianRelErr: opt(c.MedianRelErr),
		P99RelErr:    opt(c.P99RelErr),
		AggMeanNs:    int64(c.AggMean),
		AggSamples:   c.AggSamples,
		AggRelErr:    opt(c.AggRelErr),
	}
}

// HealthJSON is the /healthz response.
type HealthJSON struct {
	Status        string  `json:"status"`
	UptimeS       float64 `json:"uptime_s"`
	Flows         int     `json:"flows"`
	Samples       uint64  `json:"samples"`
	Records       uint64  `json:"records"`
	Frames        uint64  `json:"frames"`
	Conns         int     `json:"connections_active"`
	ConnsTotal    uint64  `json:"connections_total"`
	DecodeErrors  uint64  `json:"decode_errors"`
	SampleRate1W  float64 `json:"ingest_samples_per_s"`
	RecordRate1W  float64 `json:"ingest_records_per_s"`
	WindowSeconds float64 `json:"rate_window_s"`
	// DecodeErrorKinds breaks DecodeErrors down by corruption kind,
	// summed across exporters (omitted while zero).
	DecodeErrorKinds map[string]uint64 `json:"decode_error_kinds,omitempty"`
	// ReliableConns counts connections that spoke the swp framing; the
	// Transport* fields aggregate their receiver-side loss accounting.
	ReliableConns       uint64 `json:"reliable_connections_total"`
	TransportSegments   uint64 `json:"transport_segments"`
	TransportDuplicates uint64 `json:"transport_duplicates"`
	TransportOutOfOrder uint64 `json:"transport_out_of_order"`
	TransportGaps       uint64 `json:"transport_gaps"`
}

// Handler returns the query API. It is safe to serve before, during and
// after Shutdown — post-shutdown it answers from the collector's final
// state (healthz reports "draining"/"stopped").
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/flows", s.handleFlows)
	mux.HandleFunc("/routers", s.handleRouters)
	mux.HandleFunc("/comparison", s.handleComparison)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleFlows serves the per-flow table, sorted by flow key. ?limit=N caps
// the row count (the table can hold millions of flows).
func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	snap := s.coll.Snapshot()
	limit := len(snap)
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < limit {
			limit = n
		}
	}
	rows := make([]FlowJSON, 0, limit)
	for i := 0; i < limit; i++ {
		rows = append(rows, flowJSON(&snap[i]))
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleRouters(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.routers))
	for n := range s.routers {
		names = append(names, n)
	}
	aggs := make([]*routerAgg, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		aggs = append(aggs, s.routers[n])
	}
	s.mu.Unlock()

	rows := make([]RouterJSON, 0, len(names))
	for i, agg := range aggs {
		agg.mu.Lock()
		rows = append(rows, RouterJSON{
			Router:              names[i],
			Frames:              agg.frames,
			Samples:             agg.samples,
			Records:             agg.records,
			Bytes:               agg.bytes,
			EstMeanNs:           agg.est.Mean(),
			EstP50Ns:            int64(agg.hist.Quantile(0.5)),
			EstP99Ns:            int64(agg.hist.Quantile(0.99)),
			TrueMeanNs:          agg.truth.Mean(),
			Reliable:            agg.reliable,
			TransportSegments:   agg.tSegments,
			TransportDuplicates: agg.tDuplicates,
			TransportOutOfOrder: agg.tOutOfOrder,
			TransportGaps:       agg.tGaps,
		})
		agg.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, rows)
}

func (s *Server) handleComparison(w http.ResponseWriter, r *http.Request) {
	cmp := measure.CompareFlowAggs("rli", s.coll.Snapshot())
	writeJSON(w, http.StatusOK, []ComparisonJSON{comparisonJSON(cmp)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.closed.Load() {
		status, code = "stopped", http.StatusServiceUnavailable
	} else if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	sps, rps := s.window.rates()
	var kinds map[string]uint64
	if by := s.decodeErrKinds(); len(by) > 0 {
		kinds = make(map[string]uint64, len(by))
		for k, v := range by {
			kinds[k.kind] += v
		}
	}
	writeJSON(w, code, HealthJSON{
		Status:              status,
		UptimeS:             time.Since(s.start).Seconds(),
		Flows:               s.coll.Flows(),
		Samples:             s.coll.SamplesIngested(),
		Records:             s.coll.RecordsIngested(),
		Frames:              s.frames.Load(),
		Conns:               s.activeConns(),
		ConnsTotal:          s.connsTotal.Load(),
		DecodeErrors:        s.decodeErrs.Load(),
		SampleRate1W:        sps,
		RecordRate1W:        rps,
		WindowSeconds:       s.cfg.Window.Seconds(),
		DecodeErrorKinds:    kinds,
		ReliableConns:       s.relConnsTotal.Load(),
		TransportSegments:   s.tSegments.Load(),
		TransportDuplicates: s.tDuplicates.Load(),
		TransportOutOfOrder: s.tOutOfOrder.Load(),
		TransportGaps:       s.tGaps.Load(),
	})
}

// handleMetrics serves the Prometheus text exposition format: counters for
// the ingest totals, gauges for the live state and the rolling-window
// rates.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sps, rps := s.window.rates()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP rlird_samples_total Latency samples ingested.\n# TYPE rlird_samples_total counter\n")
	p("rlird_samples_total %d\n", s.coll.SamplesIngested())
	p("# HELP rlird_records_total NetFlow records ingested.\n# TYPE rlird_records_total counter\n")
	p("rlird_records_total %d\n", s.coll.RecordsIngested())
	p("# HELP rlird_frames_total Wire frames decoded.\n# TYPE rlird_frames_total counter\n")
	p("rlird_frames_total %d\n", s.frames.Load())
	p("# HELP rlird_decode_errors_total Connections ended by a codec error.\n# TYPE rlird_decode_errors_total counter\n")
	p("rlird_decode_errors_total %d\n", s.decodeErrs.Load())
	if by := s.decodeErrKinds(); len(by) > 0 {
		keys := make([]decodeErrKey, 0, len(by))
		for k := range by {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].router != keys[j].router {
				return keys[i].router < keys[j].router
			}
			return keys[i].kind < keys[j].kind
		})
		p("# HELP rlird_decode_error_kinds_total Decode errors by exporter and corruption kind.\n# TYPE rlird_decode_error_kinds_total counter\n")
		for _, k := range keys {
			p("rlird_decode_error_kinds_total{router=%q,kind=%q} %d\n", k.router, k.kind, by[k])
		}
	}
	p("# HELP rlird_connections_total Exporter connections accepted.\n# TYPE rlird_connections_total counter\n")
	p("rlird_connections_total %d\n", s.connsTotal.Load())
	p("# HELP rlird_connections_active Exporter connections currently streaming.\n# TYPE rlird_connections_active gauge\n")
	p("rlird_connections_active %d\n", s.activeConns())
	p("# HELP rlird_reliable_connections_total Connections that spoke the swp reliable framing.\n# TYPE rlird_reliable_connections_total counter\n")
	p("rlird_reliable_connections_total %d\n", s.relConnsTotal.Load())
	p("# HELP rlird_transport_segments_total Data segments received over reliable connections.\n# TYPE rlird_transport_segments_total counter\n")
	p("rlird_transport_segments_total %d\n", s.tSegments.Load())
	p("# HELP rlird_transport_duplicates_total Duplicate segments dropped (retransmissions whose original arrived).\n# TYPE rlird_transport_duplicates_total counter\n")
	p("rlird_transport_duplicates_total %d\n", s.tDuplicates.Load())
	p("# HELP rlird_transport_out_of_order_total Segments reorder-buffered before in-order delivery.\n# TYPE rlird_transport_out_of_order_total counter\n")
	p("rlird_transport_out_of_order_total %d\n", s.tOutOfOrder.Load())
	p("# HELP rlird_transport_gaps_total Sequence-gap episodes observed by reliable receivers.\n# TYPE rlird_transport_gaps_total counter\n")
	p("rlird_transport_gaps_total %d\n", s.tGaps.Load())
	s.mu.Lock()
	names := make([]string, 0, len(s.routers))
	for n := range s.routers {
		names = append(names, n)
	}
	sort.Strings(names)
	perRouter := make([]struct {
		name             string
		segs, dups, gaps uint64
	}, 0, len(names))
	for _, n := range names {
		agg := s.routers[n]
		agg.mu.Lock()
		if agg.reliable {
			perRouter = append(perRouter, struct {
				name             string
				segs, dups, gaps uint64
			}{n, agg.tSegments, agg.tDuplicates, agg.tGaps})
		}
		agg.mu.Unlock()
	}
	s.mu.Unlock()
	if len(perRouter) > 0 {
		p("# HELP rlird_router_transport_segments_total Data segments received, by exporter.\n# TYPE rlird_router_transport_segments_total counter\n")
		for _, r := range perRouter {
			p("rlird_router_transport_segments_total{router=%q} %d\n", r.name, r.segs)
		}
		p("# HELP rlird_router_transport_duplicates_total Duplicate segments dropped, by exporter.\n# TYPE rlird_router_transport_duplicates_total counter\n")
		for _, r := range perRouter {
			p("rlird_router_transport_duplicates_total{router=%q} %d\n", r.name, r.dups)
		}
		p("# HELP rlird_router_transport_gaps_total Sequence-gap episodes, by exporter.\n# TYPE rlird_router_transport_gaps_total counter\n")
		for _, r := range perRouter {
			p("rlird_router_transport_gaps_total{router=%q} %d\n", r.name, r.gaps)
		}
	}
	p("# HELP rlird_flows Distinct flows aggregated.\n# TYPE rlird_flows gauge\n")
	p("rlird_flows %d\n", s.coll.Flows())
	p("# HELP rlird_shards Collector shard goroutines.\n# TYPE rlird_shards gauge\n")
	p("rlird_shards %d\n", s.coll.Shards())
	p("# HELP rlird_ingest_samples_per_second Rolling-window sample ingest rate.\n# TYPE rlird_ingest_samples_per_second gauge\n")
	p("rlird_ingest_samples_per_second %g\n", sps)
	p("# HELP rlird_ingest_records_per_second Rolling-window record ingest rate.\n# TYPE rlird_ingest_records_per_second gauge\n")
	p("rlird_ingest_records_per_second %g\n", rps)
	p("# HELP rlird_uptime_seconds Time since the service started.\n# TYPE rlird_uptime_seconds gauge\n")
	p("rlird_uptime_seconds %g\n", time.Since(s.start).Seconds())
}
