package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// genSamples builds a deterministic stream over the given flow count.
func genSamples(n, flows int) []collector.Sample {
	out := make([]collector.Sample, n)
	for i := range out {
		f := i % flows
		out[i] = collector.Sample{
			Key: packet.FlowKey{
				Src: packet.Addr(0x0a000000 + f), Dst: packet.Addr(0x0b000000 + f/7),
				SrcPort: uint16(1024 + f), DstPort: 443, Proto: 6,
			},
			Est:  time.Duration(100+i%900) * time.Microsecond,
			True: time.Duration(110+i%900) * time.Microsecond,
		}
	}
	return out
}

// waitIngested polls until the server has ingested want samples.
func waitIngested(t *testing.T, s *Server, want uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d samples ingested", want), func() bool {
		return s.Collector().SamplesIngested() >= want
	})
}

// waitFor polls cond with a deadline — the sync point for state the
// connection handler updates after the collector counters (router
// aggregates, trailing frames).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func getJSON(t *testing.T, s *Server, path string, v any) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
	}
}

// TestServiceEndToEnd exercises the full TCP path: hello, samples, records,
// and every HTTP endpoint.
func TestServiceEndToEnd(t *testing.T) {
	s, err := New(Config{Listen: "127.0.0.1:0", Shards: 4, Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	samples := genSamples(2048, 64)
	c, err := Dial("tcp", s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("tor3.0"); err != nil {
		t.Fatal(err)
	}
	for _, smp := range samples {
		if err := c.Add(smp.Key, smp.Est, smp.True); err != nil {
			t.Fatal(err)
		}
	}
	recs := []netflow.Record{{
		Key:     samples[0].Key,
		First:   simtime.FromDuration(time.Millisecond),
		Last:    simtime.FromDuration(5 * time.Millisecond),
		Packets: 32, Bytes: 48000,
	}}
	if err := c.SendRecords(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, s, uint64(len(samples)))
	// The records frame trails the samples and router aggregates update
	// after the collector counters — wait for both before asserting.
	waitFor(t, "the records frame", func() bool { return s.Collector().RecordsIngested() >= 1 })
	waitFor(t, "router aggregates to settle", func() bool {
		r := s.routerFor("tor3.0")
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.samples == uint64(len(samples)) && r.records == 1
	})

	var flows []FlowJSON
	getJSON(t, s, "/flows", &flows)
	if len(flows) != 64 {
		t.Fatalf("/flows has %d rows, want 64", len(flows))
	}
	var total int64
	for _, f := range flows {
		total += f.Samples
	}
	if total != int64(len(samples)) {
		t.Fatalf("/flows accounts %d samples, want %d", total, len(samples))
	}

	var limited []FlowJSON
	getJSON(t, s, "/flows?limit=5", &limited)
	if len(limited) != 5 {
		t.Fatalf("/flows?limit=5 has %d rows", len(limited))
	}

	var routers []RouterJSON
	getJSON(t, s, "/routers", &routers)
	// Hello arrived before any data, so the connection never materialized a
	// fallback remote-address row — only the declared identity exists
	// (reconnecting exporters must not grow /routers without bound).
	if len(routers) != 1 {
		t.Fatalf("/routers has %d rows, want just the declared identity: %+v", len(routers), routers)
	}
	named := routers[0]
	if named.Router != "tor3.0" || named.Samples != uint64(len(samples)) || named.Records != 1 {
		t.Fatalf("named router row wrong: %+v", named)
	}

	var cmp []ComparisonJSON
	getJSON(t, s, "/comparison", &cmp)
	if len(cmp) != 1 || cmp[0].Estimator != "rli" || cmp[0].Flows != 64 {
		t.Fatalf("/comparison: %+v", cmp)
	}
	if cmp[0].MedianRelErr == nil || *cmp[0].MedianRelErr <= 0 {
		t.Fatalf("median rel err missing: %+v", cmp[0])
	}

	var health HealthJSON
	getJSON(t, s, "/healthz", &health)
	if health.Status != "ok" || health.Samples != uint64(len(samples)) || health.Records != 1 {
		t.Fatalf("/healthz: %+v", health)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	metrics := rec.Body.String()
	for _, want := range []string{
		fmt.Sprintf("rlird_samples_total %d", len(samples)),
		"rlird_records_total 1",
		"rlird_flows 64",
		"rlird_ingest_samples_per_second",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServiceUnixSocket covers the Unix-socket ingest listener.
func TestServiceUnixSocket(t *testing.T) {
	sock := t.TempDir() + "/rlird.sock"
	s, err := New(Config{Unix: sock, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial("unix", sock, 0)
	if err != nil {
		t.Fatal(err)
	}
	samples := genSamples(512, 8)
	if err := c.SendSamples(samples); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitIngested(t, s, uint64(len(samples)))
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := len(s.Snapshot()); got != 8 {
		t.Fatalf("final snapshot has %d flows, want 8", got)
	}
}

// TestServiceRejectsGarbage proves a codec error ends only the offending
// connection and is counted, leaving the service healthy.
func TestServiceRejectsGarbage(t *testing.T) {
	s, err := New(Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The service closes the connection on the decode error; reads drain to
	// EOF eventually.
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, readErr := conn.Read(buf)
	if readErr == nil {
		t.Fatal("service answered garbage instead of closing")
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.decodeErrs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("decode error not counted")
		}
		time.Sleep(time.Millisecond)
	}

	// The plane still ingests.
	c, err := Dial("tcp", s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendSamples(genSamples(16, 4)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitIngested(t, s, 16)
}

// TestServiceGracefulShutdownUnderLoad stops the service while four
// connections are streaming flat out: shutdown must return promptly
// (force-closing the writers), never panic the collector, and leave a
// queryable final state.
func TestServiceGracefulShutdownUnderLoad(t *testing.T) {
	s, err := New(Config{Listen: "127.0.0.1:0", Shards: 4, DrainTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const conns = 4
	var wg sync.WaitGroup
	var sent atomic.Uint64
	stream := genSamples(4096, 256)
	for i := 0; i < conns; i++ {
		c, err := Dial("tcp", s.Addr().String(), 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			defer c.conn.Close()
			for {
				if err := c.SendSamples(stream); err != nil {
					return // force-closed by shutdown
				}
				sent.Add(uint64(len(stream)))
			}
		}(c)
	}

	// Let real load build up before pulling the plug.
	waitIngested(t, s, uint64(len(stream))*2)

	start := time.Now()
	err = s.Shutdown(context.Background())
	elapsed := time.Since(start)
	wg.Wait()

	// Writers never stop on their own, so the drain window must have
	// force-closed them — and reported it.
	if err == nil {
		t.Error("Shutdown reported a clean drain under unbounded load")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v; the drain bound is not working", elapsed)
	}

	// The final state is consistent and queryable after shutdown.
	snap := s.Snapshot()
	if len(snap) != 256 {
		t.Fatalf("final snapshot has %d flows, want 256", len(snap))
	}
	var health HealthJSON
	getJSON(t, s, "/healthz", &health)
	if health.Status != "stopped" {
		t.Fatalf("post-shutdown /healthz status %q", health.Status)
	}
	// A second Shutdown is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestServeConnInProcess drives the in-process (listener-less) path over a
// net.Pipe, the embedding the examples use.
func TestServeConnInProcess(t *testing.T) {
	s, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	server, client := net.Pipe()
	s.ServeConn(server)
	c := NewClient(client, 0)
	if err := c.Hello("pipe0"); err != nil {
		t.Fatal(err)
	}
	if err := c.SendSamples(genSamples(128, 4)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitIngested(t, s, 128)
	var routers []RouterJSON
	getJSON(t, s, "/routers", &routers)
	found := false
	for _, r := range routers {
		found = found || r.Router == "pipe0"
	}
	if !found {
		t.Fatalf("pipe0 missing from /routers: %+v", routers)
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.json"
	if err := writeFile(good, `{"listen": "127.0.0.1:7171", "shards": 8, "window_ns": 5000000000}`); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "127.0.0.1:7171" || cfg.Shards != 8 || cfg.Window != 5*time.Second {
		t.Fatalf("parsed %+v", cfg)
	}

	bad := dir + "/bad.json"
	if err := writeFile(bad, `{"listne": "oops"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("misspelled config field accepted")
	}
}
