package netsim

import (
	"math"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

func TestUtilMeterTracksOfferedLoad(t *testing.T) {
	// Offer a steady 50% load (one 1250-byte packet every 20µs on a 1 Gbps
	// link = 10µs busy per 20µs) and check the EWMA converges near 0.5.
	eng := eventsim.New()
	nw := New(eng)
	src := nw.AddNode(NodeConfig{Name: "src"})
	dst := nw.AddNode(NodeConfig{Name: "dst"})
	nw.Connect(src, dst, LinkConfig{RateBps: 1e9})
	src.SetForward(func(n *Node, p *packet.Packet) int { return 0 })

	m := NewUtilMeter(src.Port(0), 100*time.Microsecond, 0.3)
	m.Start()

	for i := 0; i < 1000; i++ {
		at := simtime.FromDuration(time.Duration(i) * 20 * time.Microsecond)
		nw.Inject(src, &packet.Packet{ID: uint64(i + 1), Size: 1250}, at)
	}
	eng.RunUntil(simtime.FromDuration(20 * time.Millisecond))

	if got := m.Utilization(); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("utilization = %v, want ~0.5", got)
	}
	if m.Samples() == 0 {
		t.Fatal("meter took no samples")
	}
}

func TestUtilMeterIdleLink(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	a := nw.AddNode(NodeConfig{})
	b := nw.AddNode(NodeConfig{})
	nw.Connect(a, b, LinkConfig{RateBps: 1e9})
	m := NewUtilMeter(a.Port(0), time.Millisecond, 0.5)
	m.Start()
	eng.RunUntil(simtime.FromDuration(10 * time.Millisecond))
	if got := m.Utilization(); got != 0 {
		t.Fatalf("idle utilization = %v", got)
	}
}

func TestUtilMeterBeforeFirstSample(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	a := nw.AddNode(NodeConfig{})
	b := nw.AddNode(NodeConfig{})
	nw.Connect(a, b, LinkConfig{RateBps: 1e9})
	m := NewUtilMeter(a.Port(0), time.Second, 0.5)
	m.Start()
	if m.Utilization() != 0 {
		t.Fatal("pre-sample utilization should be 0 (most aggressive adaptive rate)")
	}
}

func TestUtilMeterCappedAtOne(t *testing.T) {
	// Saturate the link; utilization must never exceed 1.
	eng := eventsim.New()
	nw := New(eng)
	src := nw.AddNode(NodeConfig{})
	dst := nw.AddNode(NodeConfig{})
	nw.Connect(src, dst, LinkConfig{RateBps: 1e6})
	src.SetForward(func(n *Node, p *packet.Packet) int { return 0 })
	for i := 0; i < 2000; i++ {
		nw.Inject(src, &packet.Packet{ID: uint64(i + 1), Size: 1500}, simtime.Zero)
	}
	// Each 1500-byte packet takes 12ms at 1 Mbps, so the sampling window
	// must span several serializations for the byte counter to be smooth.
	m := NewUtilMeter(src.Port(0), 50*time.Millisecond, 1.0)
	m.Start()
	eng.RunUntil(simtime.FromDuration(500 * time.Millisecond))
	if got := m.Utilization(); got > 1.0 || got < 0.9 {
		t.Fatalf("saturated utilization = %v, want ~1.0", got)
	}
}

func TestUtilMeterValidation(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	a := nw.AddNode(NodeConfig{})
	b := nw.AddNode(NodeConfig{})
	nw.Connect(a, b, LinkConfig{RateBps: 1e9})
	for _, fn := range []func(){
		func() { NewUtilMeter(a.Port(0), 0, 0.5) },
		func() { NewUtilMeter(a.Port(0), time.Second, 0) },
		func() { NewUtilMeter(a.Port(0), time.Second, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
