// Package netsim is a store-and-forward packet network simulator built on
// the discrete-event engine (internal/eventsim).
//
// It models what the paper's in-house trace-driven simulator models (§4.1,
// Figure 3): packets experience per-switch processing delay, FIFO drop-tail
// output queueing bounded in bytes, wire serialization at the link rate, and
// link propagation. Measurement instruments attach through taps — callbacks
// at transmit-start (egress hardware timestamping semantics), at node
// ingress, at local delivery, and at drop — and may inject packets into
// ports, which is how RLI senders emit reference packets.
//
// The simulator is deliberately single-threaded and allocation-lean: in a
// latency study the simulator must never perturb the quantity under
// measurement, so all instrument effects (added load from reference packets)
// are explicit packets, never hidden costs. Steady-state forwarding is
// zero-allocation (pinned by TestSteadyForwardingZeroAlloc); per-packet
// work routes through monomorphic typed events rather than closures.
//
// Mid-run reconfiguration is part of the model: Port.SetRate and
// Node.SetProcDelay change link rate and processing delay while packets
// are in flight, which is how the scenario engine (internal/scenario)
// schedules link-degrade and hop-delay faults. internal/topo builds k-ary
// fat-trees on top of this package; internal/core attaches the RLI
// instruments.
package netsim
