package netsim

import (
	"time"

	"github.com/netmeasure/rlir/internal/simtime"
)

// UtilMeter estimates the utilization of a port's link with a periodically
// sampled exponentially weighted moving average — the "estimated link
// utilization at the interface" an RLI sender adapts its injection rate to
// (paper §1, §3.2). Crucially, it sees only the bytes leaving its own port:
// it is structurally blind to cross traffic joining at downstream queues,
// which is exactly the failure mode the paper studies.
type UtilMeter struct {
	port   *Port
	alpha  float64
	period time.Duration

	lastBytes uint64
	lastAt    simtime.Time
	ewma      float64
	samples   uint64
}

// NewUtilMeter creates a meter over port with the given sampling period and
// EWMA smoothing factor alpha in (0, 1]; alpha = 1 keeps only the latest
// window.
func NewUtilMeter(port *Port, period time.Duration, alpha float64) *UtilMeter {
	if period <= 0 {
		panic("netsim: UtilMeter requires a positive period")
	}
	if alpha <= 0 || alpha > 1 {
		panic("netsim: UtilMeter alpha must be in (0,1]")
	}
	return &UtilMeter{port: port, alpha: alpha, period: period}
}

// Start begins sampling on the network's engine at the next period boundary.
func (m *UtilMeter) Start() {
	eng := m.port.node.net.eng
	m.lastBytes = m.port.ctr.TxBytes
	m.lastAt = eng.Now()
	eng.Ticker(eng.Now().Add(m.period), m.period, func(now simtime.Time) bool {
		m.sample(now)
		return true
	})
}

func (m *UtilMeter) sample(now simtime.Time) {
	cur := m.port.ctr.TxBytes
	inst := simtime.Rate(int64(cur-m.lastBytes), m.lastAt, now) / m.port.cfg.RateBps
	if inst > 1 {
		inst = 1
	}
	if m.samples == 0 {
		m.ewma = inst
	} else {
		m.ewma = m.alpha*inst + (1-m.alpha)*m.ewma
	}
	m.lastBytes = cur
	m.lastAt = now
	m.samples++
}

// Utilization returns the current EWMA estimate in [0, 1]. Before the first
// sample it returns 0, which makes a freshly started adaptive sender begin
// at its most aggressive rate — matching the paper's observation that low
// estimated utilization triggers the highest injection rate.
func (m *UtilMeter) Utilization() float64 { return m.ewma }

// Samples returns how many sampling periods have elapsed.
func (m *UtilMeter) Samples() uint64 { return m.samples }
