package netsim

import (
	"fmt"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// NodeID identifies a node within one Network. IDs are dense and start at 0.
type NodeID int32

// TapFunc observes a packet at an instrumentation point. Taps run
// synchronously inside the event that triggered them; the packet pointer is
// live simulation state, so taps must not retain it past the call unless
// they copy what they need.
type TapFunc func(p *packet.Packet, now simtime.Time)

// ForwardFunc chooses the output port index for a packet arriving at a node,
// or a negative value to deliver the packet locally (the node is the
// packet's destination). It runs after the node's processing delay.
type ForwardFunc func(n *Node, p *packet.Packet) int

// DelayFunc returns an extra per-packet delay a node adds on top of its
// configured processing delay. It must be a pure function of the packet and
// the instant (no retained state mutation ordered across lanes), which keeps
// a partitioned run deterministic: the node evaluates it on its own lane.
// Scenario fault injection uses it for the compromised-switch mode — a
// router that games measurement by delaying only the packets it predicts
// won't be sampled.
type DelayFunc func(p *packet.Packet, now simtime.Time) time.Duration

// EmulateFunc drives one link from recorded behaviour: for a packet about to
// propagate it returns extra one-way delay to add on top of the configured
// propagation, and whether the link drops the packet outright. Like
// DelayFunc it must be pure per (packet, instant) so partitioned runs stay
// deterministic. Trace-driven link emulation (internal/trace.LinkTrace)
// plugs in here.
type EmulateFunc func(p *packet.Packet, now simtime.Time) (extra time.Duration, drop bool)

// Network is a collection of nodes, ports and links sharing one event
// engine. Create with New.
type Network struct {
	eng        *eventsim.Engine
	par        *eventsim.Parallel // nil on a sequential network
	nodes      []*Node
	tracePaths bool
	nextPktID  uint64

	// Typed event kinds for the per-packet hot path. Every steady-state
	// forwarding step — injection arrival, post-processing dispatch, wire
	// transfer completion, propagation arrival — is a typed event whose
	// payload (node or port, plus packet) lives by value in the heap slot,
	// so forwarding a packet schedules no closures and allocates nothing.
	kReceive  eventsim.Kind // a: *Node, b: *packet.Packet — ingress arrival
	kDispatch eventsim.Kind // a: *Node, b: *packet.Packet — post-proc-delay forwarding
	kTxDone   eventsim.Kind // a: *Port, b: *packet.Packet — wire transfer complete
}

// New returns an empty network on the given engine.
func New(eng *eventsim.Engine) *Network {
	nw := &Network{eng: eng}
	nw.kReceive = eng.RegisterKind(func(a, b any) { a.(*Node).receive(b.(*packet.Packet)) })
	nw.kDispatch = eng.RegisterKind(func(a, b any) { a.(*Node).dispatch(b.(*packet.Packet)) })
	nw.kTxDone = eng.RegisterKind(func(a, b any) { a.(*Port).txDone(b.(*packet.Packet)) })
	return nw
}

// NewParallel returns an empty network on a conservative parallel engine.
// Nodes default to lane 0; place them with Assign before scheduling starts.
// Any link whose endpoints end up on different lanes becomes a cross-lane
// handoff and must have propagation >= the lookahead passed to Parallel.Run
// (MinCrossPropagation reports the largest legal value).
func NewParallel(p *eventsim.Parallel) *Network {
	nw := &Network{eng: p.Lane(0), par: p}
	nw.kReceive = p.RegisterKind(func(a, b any) { a.(*Node).receive(b.(*packet.Packet)) })
	nw.kDispatch = p.RegisterKind(func(a, b any) { a.(*Node).dispatch(b.(*packet.Packet)) })
	nw.kTxDone = p.RegisterKind(func(a, b any) { a.(*Port).txDone(b.(*packet.Packet)) })
	return nw
}

// Engine returns the event engine the network runs on (lane 0 when the
// network is partitioned).
func (nw *Network) Engine() *eventsim.Engine { return nw.eng }

// Parallel returns the parallel engine, or nil on a sequential network.
func (nw *Network) Parallel() *eventsim.Parallel { return nw.par }

// Assign places n on the given lane of the parallel engine. It panics on a
// sequential network and must happen before any event involving n is
// scheduled.
func (nw *Network) Assign(n *Node, lane int) {
	if nw.par == nil {
		panic("netsim: Assign on a sequential network")
	}
	n.eng = nw.par.Lane(lane)
}

// MinCrossPropagation returns the smallest propagation delay among links
// whose endpoints sit on different lanes, and whether any such link exists.
// It is the largest lookahead the partitioning supports: a cross-lane
// message travels at least this far into the future, so windows of this
// width can run lanes independently without violating timestamp order.
func (nw *Network) MinCrossPropagation() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, n := range nw.nodes {
		for _, pt := range n.ports {
			if pt.dst.eng == n.eng {
				continue
			}
			if !found || pt.cfg.Propagation < min {
				min = pt.cfg.Propagation
				found = true
			}
		}
	}
	return min, found
}

// SetTracePaths enables ground-truth path recording: every node appends its
// ID to Packet.Hops on ingress. Used by validation tests and the oracle
// demultiplexer only.
func (nw *Network) SetTracePaths(on bool) { nw.tracePaths = on }

// NewPacketID returns a fresh unique packet ID.
func (nw *Network) NewPacketID() uint64 {
	nw.nextPktID++
	return nw.nextPktID
}

// NodeConfig configures a node.
type NodeConfig struct {
	// Name is a human-readable label used in errors and dumps.
	Name string
	// ProcDelay is the fixed per-packet processing (lookup) delay applied
	// between ingress and the forwarding decision.
	ProcDelay time.Duration
}

// AddNode creates a node. Nodes forward nothing until SetForward is called;
// until then every packet is delivered locally (sink behaviour).
func (nw *Network) AddNode(cfg NodeConfig) *Node {
	n := &Node{
		net:  nw,
		eng:  nw.eng,
		id:   NodeID(len(nw.nodes)),
		name: cfg.Name,
		proc: cfg.ProcDelay,
		forward: func(*Node, *packet.Packet) int {
			return -1
		},
	}
	if n.name == "" {
		n.name = fmt.Sprintf("node%d", n.id)
	}
	nw.nodes = append(nw.nodes, n)
	return n
}

// Node returns the node with the given ID.
func (nw *Network) Node(id NodeID) *Node {
	return nw.nodes[id]
}

// Nodes returns the number of nodes.
func (nw *Network) Nodes() int { return len(nw.nodes) }

// Inject schedules p to arrive at node n's ingress at instant at. It is how
// workloads enter the network. On a partitioned network the event lands on
// n's lane.
func (nw *Network) Inject(n *Node, p *packet.Packet, at simtime.Time) {
	n.eng.AtKind(at, nw.kReceive, n, p)
}

// LinkConfig configures a unidirectional link and the output queue feeding
// it.
type LinkConfig struct {
	// RateBps is the line rate in bits per second. Required.
	RateBps float64
	// Propagation is the one-way propagation delay.
	Propagation time.Duration
	// QueueBytes bounds the output queue in bytes, excluding the packet in
	// transmission. Zero means unbounded (no drops).
	QueueBytes int
}

// Connect attaches a new output port on from, linked to to's ingress, and
// returns the port. Links are unidirectional; call twice for a duplex pair.
func (nw *Network) Connect(from, to *Node, cfg LinkConfig) *Port {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("netsim: link %s->%s has non-positive rate", from.name, to.name))
	}
	p := &Port{
		node:  from,
		index: len(from.ports),
		dst:   to,
		cfg:   cfg,
	}
	from.ports = append(from.ports, p)
	return p
}

// Node is a switch, router or host.
type Node struct {
	net     *Network
	eng     *eventsim.Engine // the lane this node's events run on
	id      NodeID
	name    string
	proc    time.Duration
	extra   DelayFunc
	ports   []*Port
	forward ForwardFunc
	refID   uint64 // per-node packet ID counter (partitioned networks)

	onReceive []TapFunc
	onDeliver []TapFunc

	// Counters.
	received  uint64
	delivered uint64
}

// ID returns the node's dense identifier.
func (n *Node) ID() NodeID { return n.id }

// Network returns the network the node belongs to.
func (n *Node) Network() *Network { return n.net }

// Engine returns the lane engine this node's events run on. On a sequential
// network it is the network's engine.
func (n *Node) Engine() *eventsim.Engine { return n.eng }

// NewPacketID returns a fresh packet ID unique across the network. On a
// sequential network it is the network-wide dense counter (the golden
// fixtures pin those values). On a partitioned network each node draws from
// its own ID space — node index in the high bits, a per-node counter below —
// because instruments on different lanes mint IDs concurrently. Consumers
// never decode IDs; reference-packet demux keys on (sender, timestamp).
func (n *Node) NewPacketID() uint64 {
	if n.net.par == nil {
		return n.net.NewPacketID()
	}
	n.refID++
	return uint64(n.id+1)<<40 | n.refID
}

// Name returns the node's label.
func (n *Node) Name() string { return n.name }

// Ports returns the node's output ports in creation order.
func (n *Node) Ports() []*Port { return n.ports }

// Port returns output port i.
func (n *Node) Port(i int) *Port { return n.ports[i] }

// SetForward installs the forwarding function.
func (n *Node) SetForward(f ForwardFunc) { n.forward = f }

// ProcDelay returns the node's per-packet processing delay.
func (n *Node) ProcDelay() time.Duration { return n.proc }

// SetProcDelay changes the node's per-packet processing delay. Experiments
// use it to inject latency anomalies into a running topology.
func (n *Node) SetProcDelay(d time.Duration) {
	if d < 0 {
		panic("netsim: negative processing delay")
	}
	n.proc = d
}

// SetSelectiveDelay installs (or with nil removes) a per-packet extra-delay
// hook evaluated at ingress, added on top of ProcDelay. Unlike SetProcDelay
// it can discriminate packets — the compromised-switch fault uses it to
// delay only traffic it predicts is unmeasured. A negative return panics.
func (n *Node) SetSelectiveDelay(f DelayFunc) { n.extra = f }

// OnReceive registers a tap run at packet ingress, before processing delay.
// Receiver instruments placed "at" a router attach here.
func (n *Node) OnReceive(t TapFunc) { n.onReceive = append(n.onReceive, t) }

// OnDeliver registers a tap run when a packet terminates at this node.
func (n *Node) OnDeliver(t TapFunc) { n.onDeliver = append(n.onDeliver, t) }

// Received returns the count of packets that entered this node.
func (n *Node) Received() uint64 { return n.received }

// Delivered returns the count of packets locally delivered at this node.
func (n *Node) Delivered() uint64 { return n.delivered }

// receive handles packet ingress.
func (n *Node) receive(p *packet.Packet) {
	now := n.eng.Now()
	n.received++
	if n.net.tracePaths {
		p.RecordHop(int32(n.id))
	}
	for _, t := range n.onReceive {
		t(p, now)
	}
	d := n.proc
	if n.extra != nil {
		e := n.extra(p, now)
		if e < 0 {
			panic("netsim: negative selective delay")
		}
		d += e
	}
	if d > 0 {
		n.eng.AfterKind(d, n.net.kDispatch, n, p)
		return
	}
	n.dispatch(p)
}

// dispatch applies the forwarding decision after processing delay.
func (n *Node) dispatch(p *packet.Packet) {
	out := n.forward(n, p)
	if out < 0 {
		n.deliver(p)
		return
	}
	if out >= len(n.ports) {
		panic(fmt.Sprintf("netsim: %s forwarded %v to nonexistent port %d", n.name, p, out))
	}
	n.ports[out].Enqueue(p)
}

func (n *Node) deliver(p *packet.Packet) {
	now := n.eng.Now()
	n.delivered++
	for _, t := range n.onDeliver {
		t(p, now)
	}
}

// PortCounters are the cumulative statistics of one port.
type PortCounters struct {
	Enqueued   uint64
	TxPackets  uint64
	TxBytes    uint64
	Drops      uint64
	DropBytes  uint64
	EmuDrops   uint64 // packets the link emulator dropped after transmission
	QueueBytes int    // instantaneous backlog, excluding packet in service
	QueueLen   int
}

// Port is an output port: a FIFO drop-tail queue draining onto a
// unidirectional link.
type Port struct {
	node  *Node
	index int
	dst   *Node
	cfg   LinkConfig

	queue  fifo
	qBytes int
	busy   bool
	emu    EmulateFunc

	onTxStart []TapFunc
	onDrop    []TapFunc

	ctr PortCounters
}

// Node returns the owning node.
func (pt *Port) Node() *Node { return pt.node }

// Index returns the port's index on its node.
func (pt *Port) Index() int { return pt.index }

// Dst returns the node at the far end of the link.
func (pt *Port) Dst() *Node { return pt.dst }

// Rate returns the configured line rate in bits per second.
func (pt *Port) Rate() float64 { return pt.cfg.RateBps }

// Propagation returns the link's one-way propagation delay.
func (pt *Port) Propagation() time.Duration { return pt.cfg.Propagation }

// SetRate changes the link's line rate. A packet already in transmission
// finishes at the rate it started with; packets starting transmission after
// the call serialize at the new rate — the way a renegotiated or degraded
// physical link behaves. Fault injection (scenario link-degrade) uses this
// mid-run.
func (pt *Port) SetRate(bps float64) {
	if bps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v on %s port %d", bps, pt.node.name, pt.index))
	}
	pt.cfg.RateBps = bps
}

// SetPropagation changes the link's propagation delay. Experiments use it
// to model heterogeneous path lengths.
func (pt *Port) SetPropagation(d time.Duration) {
	if d < 0 {
		panic("netsim: negative propagation delay")
	}
	pt.cfg.Propagation = d
}

// SetEmulator installs (or with nil removes) a link emulator evaluated when
// a packet finishes transmission: extra delay is added on top of the
// configured propagation (never subtracted, so a partitioned run's
// cross-lane lookahead — derived from configured propagation — stays valid)
// and drops discard the packet on the wire, counted in Counters().EmuDrops.
// A negative extra delay panics.
func (pt *Port) SetEmulator(f EmulateFunc) { pt.emu = f }

// Counters returns a snapshot of the port's statistics.
func (pt *Port) Counters() PortCounters {
	c := pt.ctr
	c.QueueBytes = pt.qBytes
	c.QueueLen = pt.queue.len()
	return c
}

// OnTxStart registers a tap run at the instant a packet begins transmission
// on the wire — the point where egress hardware timestamping happens, and
// where both RLI sender and receiver instruments attach.
func (pt *Port) OnTxStart(t TapFunc) { pt.onTxStart = append(pt.onTxStart, t) }

// OnDrop registers a tap run when the queue rejects a packet.
func (pt *Port) OnDrop(t TapFunc) { pt.onDrop = append(pt.onDrop, t) }

// Enqueue places p in the output queue, dropping it if the byte bound would
// be exceeded. Instruments may call this to inject packets (reference
// packets enter the network here).
func (pt *Port) Enqueue(p *packet.Packet) {
	if p.Size <= 0 {
		panic(fmt.Sprintf("netsim: enqueue of zero-size packet %v", p))
	}
	if pt.cfg.QueueBytes > 0 && pt.qBytes+p.Size > pt.cfg.QueueBytes {
		pt.ctr.Drops++
		pt.ctr.DropBytes += uint64(p.Size)
		now := pt.node.eng.Now()
		for _, t := range pt.onDrop {
			t(p, now)
		}
		return
	}
	pt.queue.push(p)
	pt.qBytes += p.Size
	pt.ctr.Enqueued++
	if !pt.busy {
		pt.startTx()
	}
}

// startTx begins transmitting the head-of-line packet.
func (pt *Port) startTx() {
	p := pt.queue.pop()
	pt.qBytes -= p.Size
	pt.busy = true
	eng := pt.node.eng
	now := eng.Now()
	for _, t := range pt.onTxStart {
		t(p, now)
	}
	txDur := simtime.TxTime(p.Size, pt.cfg.RateBps)
	pt.ctr.TxPackets++
	pt.ctr.TxBytes += uint64(p.Size)
	eng.AfterKind(txDur, pt.node.net.kTxDone, pt, p)
}

// txDone handles wire transfer completion: hand off to propagation, then
// serve the next queued packet. A busy port therefore has exactly one
// pending event per in-flight packet — the tx-complete of the packet in
// service — and re-arms itself from it. When the far end lives on another
// lane the propagation hop becomes a cross-lane message; SendKind enforces
// that the delay covers the lookahead.
func (pt *Port) txDone(p *packet.Packet) {
	nw := pt.node.net
	src, dst := pt.node.eng, pt.dst.eng
	prop := pt.cfg.Propagation
	if pt.emu != nil {
		extra, drop := pt.emu(p, src.Now())
		if drop {
			pt.ctr.EmuDrops++
			pt.rearm()
			return
		}
		if extra < 0 {
			panic("netsim: negative emulated link delay")
		}
		prop += extra
	}
	switch {
	case dst != src:
		src.SendKind(dst, prop, nw.kReceive, pt.dst, p)
	case prop > 0:
		src.AfterKind(prop, nw.kReceive, pt.dst, p)
	default:
		pt.dst.receive(p)
	}
	pt.rearm()
}

// rearm serves the next queued packet after a transfer completes.
func (pt *Port) rearm() {
	if pt.queue.len() > 0 {
		pt.startTx()
	} else {
		pt.busy = false
	}
}

// fifo is a ring-buffer packet queue sized on demand. The buffer length is
// always a power of two so head/tail wrap with a mask instead of a modulo.
type fifo struct {
	buf        []*packet.Packet
	head, tail int
	n          int
}

func (f *fifo) len() int { return f.n }

func (f *fifo) push(p *packet.Packet) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[f.tail] = p
	f.tail = (f.tail + 1) & (len(f.buf) - 1)
	f.n++
}

func (f *fifo) pop() *packet.Packet {
	if f.n == 0 {
		panic("netsim: pop from empty queue")
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return p
}

func (f *fifo) grow() {
	next := make([]*packet.Packet, max(16, 2*len(f.buf)))
	mask := len(f.buf) - 1
	for i := 0; i < f.n; i++ {
		next[i] = f.buf[(f.head+i)&mask]
	}
	f.buf = next
	f.head, f.tail = 0, f.n&(len(next)-1)
}
