package netsim

import (
	"math/rand"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// TestPacketConservation is the simulator's books-balance invariant: over a
// random topology and workload, every injected packet is either delivered
// at some node or dropped at some queue — never duplicated, never lost in
// the machinery.
func TestPacketConservation(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		eng := eventsim.New()
		nw := New(eng)

		// Random line of 2-6 switches with random rates and tight queues,
		// terminated by a sink.
		nSw := 2 + rng.Intn(5)
		nodes := make([]*Node, 0, nSw+1)
		for i := 0; i < nSw; i++ {
			nodes = append(nodes, nw.AddNode(NodeConfig{ProcDelay: time.Duration(rng.Intn(1000)) * time.Nanosecond}))
		}
		sink := nw.AddNode(NodeConfig{Name: "sink"})
		nodes = append(nodes, sink)
		for i := 0; i < nSw; i++ {
			nw.Connect(nodes[i], nodes[i+1], LinkConfig{
				RateBps:     float64(10+rng.Intn(90)) * 1e6,
				Propagation: time.Duration(rng.Intn(10)) * time.Microsecond,
				QueueBytes:  (1 + rng.Intn(8)) << 10,
			})
			nodes[i].SetForward(func(n *Node, p *packet.Packet) int { return 0 })
		}

		var injected, delivered, dropped uint64
		sink.OnDeliver(func(p *packet.Packet, _ simtime.Time) { delivered++ })
		for i := 0; i < nSw; i++ {
			nodes[i].Port(0).OnDrop(func(p *packet.Packet, _ simtime.Time) { dropped++ })
		}

		n := 200 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			injected++
			nw.Inject(nodes[0], &packet.Packet{
				ID:   nw.NewPacketID(),
				Size: packet.MinSize + rng.Intn(packet.MaxSize-packet.MinSize),
			}, simtime.Time(rng.Int63n(int64(50*time.Millisecond))))
		}
		eng.Run()

		if delivered+dropped != injected {
			t.Fatalf("trial %d: injected %d != delivered %d + dropped %d",
				trial, injected, delivered, dropped)
		}
		// Cross-check against port counters.
		var ctrDrops uint64
		for i := 0; i < nSw; i++ {
			ctrDrops += nodes[i].Port(0).Counters().Drops
		}
		if ctrDrops != dropped {
			t.Fatalf("trial %d: counter drops %d != tap drops %d", trial, ctrDrops, dropped)
		}
		if sink.Delivered() != delivered {
			t.Fatalf("trial %d: node delivered %d != tap %d", trial, sink.Delivered(), delivered)
		}
	}
}

// TestByteConservation verifies TxBytes accounting: bytes leaving a port
// equal bytes of packets that reached the next node.
func TestByteConservation(t *testing.T) {
	link := LinkConfig{RateBps: 1e8, QueueBytes: 16 << 10}
	eng, nw, src, sw, dst := buildLine(t, LinkConfig{RateBps: 1e9}, link)

	rng := rand.New(rand.NewSource(7))
	var arrivedBytes uint64
	dst.OnDeliver(func(p *packet.Packet, _ simtime.Time) { arrivedBytes += uint64(p.Size) })
	for i := 0; i < 3000; i++ {
		nw.Inject(src, mkpkt(uint64(i+1), packet.MinSize+rng.Intn(1400)),
			simtime.Time(rng.Int63n(int64(20*time.Millisecond))))
	}
	eng.Run()

	if got := sw.Port(0).Counters().TxBytes; got != arrivedBytes {
		t.Fatalf("TxBytes %d != arrived bytes %d", got, arrivedBytes)
	}
}
