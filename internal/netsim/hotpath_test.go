package netsim

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// buildTandemLine is a src -> sw -> sink line with a rate-limited middle
// link, the minimal topology exercising every typed-event site: injection
// arrival, processing-delay dispatch, tx-complete chaining on a busy port,
// and propagation arrival.
func buildTandemLine(nw *Network) (src, sw, sink *Node) {
	src = nw.AddNode(NodeConfig{Name: "src"})
	sw = nw.AddNode(NodeConfig{Name: "sw", ProcDelay: 500 * time.Nanosecond})
	sink = nw.AddNode(NodeConfig{Name: "sink"})
	nw.Connect(src, sw, LinkConfig{RateBps: 1e9, Propagation: time.Microsecond})
	nw.Connect(sw, sink, LinkConfig{RateBps: 1e8, Propagation: time.Microsecond})
	fwd := func(n *Node, p *packet.Packet) int { return 0 }
	src.SetForward(fwd)
	sw.SetForward(fwd)
	return src, sw, sink
}

// TestSteadyForwardingZeroAlloc is the netsim half of the PR's headline
// claim: forwarding a packet through injection, processing delay, queueing,
// transmission and propagation — all four typed-event sites — allocates
// nothing once queues and the event heap have grown to steady state.
func TestSteadyForwardingZeroAlloc(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	src, _, sink := buildTandemLine(nw)

	const batch = 200
	pkts := make([]packet.Packet, batch)
	for i := range pkts {
		pkts[i] = packet.Packet{ID: uint64(i + 1), Size: 1000}
	}
	inject := func() {
		base := eng.Now()
		for i := range pkts {
			// Arrivals faster than the 1e8 bottleneck drains, so the output
			// queue stays busy and tx-complete chains into the next startTx.
			nw.Inject(src, &pkts[i], base.Add(time.Duration(i)*10*time.Microsecond))
		}
		eng.Run()
	}
	inject() // warm-up: grows the event heap and the port fifos

	allocs := testing.AllocsPerRun(10, inject)
	if allocs != 0 {
		t.Fatalf("steady-state forwarding allocated %.1f times per batch of %d packets, want 0",
			allocs, batch)
	}
	if got := sink.Delivered(); got == 0 {
		t.Fatal("no packets delivered; the zero-alloc run did not exercise the path")
	}
}

// TestTypedDispatchMatchesDirectSemantics re-checks the forwarding timeline
// through the typed-event path against first principles: one packet's
// delivery time must be the analytic sum of processing, serialization and
// propagation along the line.
func TestTypedDispatchMatchesDirectSemantics(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	src, sw, sink := buildTandemLine(nw)

	var deliveredAt simtime.Time
	sink.OnDeliver(func(p *packet.Packet, now simtime.Time) { deliveredAt = now })
	p := &packet.Packet{ID: 1, Size: 1000}
	nw.Inject(src, p, simtime.Zero)
	eng.Run()

	want := simtime.Zero.
		Add(simtime.TxTime(1000, 1e9)). // src serialization (src has no proc delay)
		Add(time.Microsecond).          // src->sw propagation
		Add(500 * time.Nanosecond).     // sw processing
		Add(simtime.TxTime(1000, 1e8)). // bottleneck serialization
		Add(time.Microsecond)           // sw->sink propagation
	if deliveredAt != want {
		t.Fatalf("delivered at %v through typed dispatch, analytic %v", deliveredAt, want)
	}
	if src.Received() != 1 || sw.Received() != 1 || sink.Delivered() != 1 {
		t.Fatalf("counters src=%d sw=%d sink=%d, want 1/1/1",
			src.Received(), sw.Received(), sink.Delivered())
	}
}

// TestFifoMaskWrap exercises the power-of-two ring buffer across several
// growth and wrap cycles.
func TestFifoMaskWrap(t *testing.T) {
	var f fifo
	mk := func(id uint64) *packet.Packet { return &packet.Packet{ID: id, Size: 64} }
	next := uint64(1)
	expect := uint64(1)
	// Interleave pushes and pops so head/tail wrap repeatedly while the
	// buffer grows through 16, 32, 64.
	for round := 0; round < 200; round++ {
		for i := 0; i < 3+round%5; i++ {
			f.push(mk(next))
			next++
		}
		for i := 0; i < 1+round%3 && f.len() > 0; i++ {
			if got := f.pop().ID; got != expect {
				t.Fatalf("round %d: popped %d, want %d", round, got, expect)
			}
			expect++
		}
		if n := len(f.buf); n&(n-1) != 0 {
			t.Fatalf("round %d: buffer length %d not a power of two", round, n)
		}
	}
	for f.len() > 0 {
		if got := f.pop().ID; got != expect {
			t.Fatalf("drain: popped %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d packets, pushed %d", expect-1, next-1)
	}
}
