package netsim

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// buildLine constructs src -> sw -> dst with the given link configs and a
// forwarding function that always uses port 0.
func buildLine(t *testing.T, l1, l2 LinkConfig) (*eventsim.Engine, *Network, *Node, *Node, *Node) {
	t.Helper()
	eng := eventsim.New()
	nw := New(eng)
	src := nw.AddNode(NodeConfig{Name: "src"})
	sw := nw.AddNode(NodeConfig{Name: "sw"})
	dst := nw.AddNode(NodeConfig{Name: "dst"})
	nw.Connect(src, sw, l1)
	nw.Connect(sw, dst, l2)
	alwaysPort0 := func(n *Node, p *packet.Packet) int { return 0 }
	src.SetForward(alwaysPort0)
	sw.SetForward(alwaysPort0)
	return eng, nw, src, sw, dst
}

func mkpkt(id uint64, size int) *packet.Packet {
	return &packet.Packet{ID: id, Size: size, Kind: packet.Regular}
}

func TestSinglePacketLatency(t *testing.T) {
	// 1000-byte packet over two 1 Gbps links with 1 µs propagation each and
	// 500 ns processing at the switch:
	//   tx1 8µs + prop 1µs + proc 0.5µs + tx2 8µs + prop 1µs = 18.5µs
	link := LinkConfig{RateBps: 1e9, Propagation: time.Microsecond}
	eng, nw, src, sw, dst := buildLine(t, link, link)
	sw.proc = 500 * time.Nanosecond

	var arrived simtime.Time
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { arrived = now })

	nw.Inject(src, mkpkt(1, 1000), simtime.Zero)
	eng.Run()

	want := simtime.FromDuration(18500 * time.Nanosecond)
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if dst.Delivered() != 1 {
		t.Fatalf("delivered = %d", dst.Delivered())
	}
}

func TestFIFONoReordering(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, _, dst := buildLine(t, link, link)

	var order []uint64
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { order = append(order, p.ID) })

	// Burst of back-to-back packets of mixed sizes injected at one instant.
	sizes := []int{1500, 64, 900, 64, 1500, 200}
	for i, s := range sizes {
		nw.Inject(src, mkpkt(uint64(i+1), s), simtime.Zero)
	}
	eng.Run()

	if len(order) != len(sizes) {
		t.Fatalf("delivered %d, want %d", len(order), len(sizes))
	}
	for i := range order {
		if order[i] != uint64(i+1) {
			t.Fatalf("reordered: %v", order)
		}
	}
}

func TestQueueingDelayAccumulates(t *testing.T) {
	// Two packets injected simultaneously: second waits for the first's
	// serialization. 1500B at 1Gbps = 12µs each.
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, _, dst := buildLine(t, link, link)

	var arrivals []simtime.Time
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { arrivals = append(arrivals, now) })

	nw.Inject(src, mkpkt(1, 1500), simtime.Zero)
	nw.Inject(src, mkpkt(2, 1500), simtime.Zero)
	eng.Run()

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	gap := arrivals[1].Sub(arrivals[0])
	if gap != 12*time.Microsecond {
		t.Fatalf("inter-arrival = %v, want 12µs (one serialization)", gap)
	}
}

func TestDropTailBounded(t *testing.T) {
	// Queue bound of 3000 bytes on the second hop; slow second link so the
	// queue builds. First link is fast so all packets arrive quickly.
	l1 := LinkConfig{RateBps: 1e10}
	l2 := LinkConfig{RateBps: 1e6, QueueBytes: 3000}
	eng, nw, src, sw, dst := buildLine(t, l1, l2)

	var drops int
	sw.Port(0).OnDrop(func(p *packet.Packet, now simtime.Time) { drops++ })

	for i := 0; i < 10; i++ {
		nw.Inject(src, mkpkt(uint64(i+1), 1500), simtime.Zero)
	}
	eng.Run()

	// Port 0 of sw: 1 in service + 2 queued (3000 bytes) fit; 7 dropped.
	if drops != 7 {
		t.Fatalf("drops = %d, want 7", drops)
	}
	c := sw.Port(0).Counters()
	if c.Drops != 7 || c.TxPackets != 3 {
		t.Fatalf("counters = %+v", c)
	}
	if dst.Delivered() != 3 {
		t.Fatalf("delivered = %d, want 3", dst.Delivered())
	}
}

func TestUnboundedQueueNeverDrops(t *testing.T) {
	l1 := LinkConfig{RateBps: 1e10}
	l2 := LinkConfig{RateBps: 1e6} // QueueBytes 0 = unbounded
	eng, nw, src, sw, dst := buildLine(t, l1, l2)
	for i := 0; i < 100; i++ {
		nw.Inject(src, mkpkt(uint64(i+1), 1500), simtime.Zero)
	}
	eng.Run()
	if c := sw.Port(0).Counters(); c.Drops != 0 {
		t.Fatalf("drops = %d on unbounded queue", c.Drops)
	}
	if dst.Delivered() != 100 {
		t.Fatalf("delivered = %d", dst.Delivered())
	}
}

func TestTxStartTapTiming(t *testing.T) {
	// The tap must fire exactly when serialization begins, i.e. the
	// delivery time minus tx time minus propagation.
	link := LinkConfig{RateBps: 1e9, Propagation: 5 * time.Microsecond}
	eng, nw, src, sw, dst := buildLine(t, link, link)

	var txAt, rxAt simtime.Time
	sw.Port(0).OnTxStart(func(p *packet.Packet, now simtime.Time) { txAt = now })
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { rxAt = now })

	nw.Inject(src, mkpkt(1, 1000), simtime.Zero)
	eng.Run()

	wantGap := 8*time.Microsecond + 5*time.Microsecond // tx + prop
	if got := rxAt.Sub(txAt); got != wantGap {
		t.Fatalf("rx-tx gap = %v, want %v", got, wantGap)
	}
}

func TestInjectionFromTap(t *testing.T) {
	// A tap that injects one extra packet per observed packet (an RLI
	// sender in miniature). The injected packet must be transmitted after
	// the current one, in order.
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, sw, dst := buildLine(t, link, link)

	injected := false
	var order []uint64
	sw.Port(0).OnTxStart(func(p *packet.Packet, now simtime.Time) {
		order = append(order, p.ID)
		if !injected {
			injected = true
			sw.Port(0).Enqueue(&packet.Packet{ID: 999, Size: 64, Kind: packet.Reference})
		}
	})
	nw.Inject(src, mkpkt(1, 1500), simtime.Zero)
	nw.Inject(src, mkpkt(2, 1500), simtime.FromDuration(time.Microsecond))
	eng.Run()

	if dst.Delivered() != 3 {
		t.Fatalf("delivered = %d, want 3", dst.Delivered())
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 999 || order[2] != 2 {
		t.Fatalf("tx order = %v, want [1 999 2]", order)
	}
}

func TestGroundTruthPathTracing(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, sw, dst := buildLine(t, link, link)
	nw.SetTracePaths(true)

	p := mkpkt(1, 100)
	nw.Inject(src, p, simtime.Zero)
	eng.Run()

	want := []int32{int32(src.ID()), int32(sw.ID()), int32(dst.ID())}
	if len(p.Hops) != 3 {
		t.Fatalf("hops = %v, want %v", p.Hops, want)
	}
	for i := range want {
		if p.Hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", p.Hops, want)
		}
	}
}

func TestOnReceiveTapSeesIngress(t *testing.T) {
	link := LinkConfig{RateBps: 1e9, Propagation: time.Microsecond}
	eng, nw, src, sw, _ := buildLine(t, link, link)

	var at simtime.Time
	sw.OnReceive(func(p *packet.Packet, now simtime.Time) { at = now })
	nw.Inject(src, mkpkt(1, 1000), simtime.Zero)
	eng.Run()

	// Ingress at sw: tx 8µs + prop 1µs after injection at src (src has no
	// processing delay and empty queue).
	if want := simtime.FromDuration(9 * time.Microsecond); at != want {
		t.Fatalf("ingress at %v, want %v", at, want)
	}
	if sw.Received() != 1 {
		t.Fatalf("received = %d", sw.Received())
	}
}

func TestForwardToBadPortPanics(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, sw, _ := buildLine(t, link, link)
	sw.SetForward(func(n *Node, p *packet.Packet) int { return 7 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad port index")
		}
	}()
	nw.Inject(src, mkpkt(1, 100), simtime.Zero)
	eng.Run()
}

func TestZeroSizePacketPanics(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	_, _, src, _, _ := buildLine(t, link, link)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-size packet")
		}
	}()
	src.Port(0).Enqueue(&packet.Packet{ID: 1, Size: 0})
}

func TestConnectZeroRatePanics(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	a := nw.AddNode(NodeConfig{})
	b := nw.AddNode(NodeConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-rate link")
		}
	}()
	nw.Connect(a, b, LinkConfig{})
}

func TestWorkConservation(t *testing.T) {
	// A saturated port transmits continuously: total tx time equals the sum
	// of serialization times, so the last delivery happens at exactly
	// n*txTime after the first transmission starts.
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, _, dst := buildLine(t, link, link)

	const n = 50
	for i := 0; i < n; i++ {
		nw.Inject(src, mkpkt(uint64(i+1), 1250), simtime.Zero) // 10µs each
	}
	var last simtime.Time
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { last = now })
	eng.Run()

	// src serializes 50 packets back to back (10µs each), then sw does the
	// same but pipelined; last delivery = 10µs*50 (src) + 10µs (sw's last).
	want := simtime.FromDuration(510 * time.Microsecond)
	if last != want {
		t.Fatalf("last delivery = %v, want %v", last, want)
	}
}

func TestFifoGrowth(t *testing.T) {
	var f fifo
	for i := 0; i < 100; i++ {
		f.push(&packet.Packet{ID: uint64(i)})
	}
	if f.len() != 100 {
		t.Fatalf("len = %d", f.len())
	}
	for i := 0; i < 100; i++ {
		if got := f.pop(); got.ID != uint64(i) {
			t.Fatalf("pop %d = %d", i, got.ID)
		}
	}
	if f.len() != 0 {
		t.Fatalf("len after drain = %d", f.len())
	}
}

func TestFifoInterleavedWrap(t *testing.T) {
	var f fifo
	id := uint64(0)
	next := uint64(0)
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			id++
			f.push(&packet.Packet{ID: id})
		}
		for i := 0; i < 2; i++ {
			next++
			if got := f.pop(); got.ID != next {
				t.Fatalf("round %d: pop = %d, want %d", round, got.ID, next)
			}
		}
	}
	for f.len() > 0 {
		next++
		if got := f.pop(); got.ID != next {
			t.Fatalf("drain: pop = %d, want %d", got.ID, next)
		}
	}
}

func TestPopEmptyPanics(t *testing.T) {
	var f fifo
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.pop()
}
