package netsim

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/eventsim"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

func TestSetProcDelayChangesLatency(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, sw, dst := buildLine(t, link, link)

	var arrivals []simtime.Time
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { arrivals = append(arrivals, now) })

	nw.Inject(src, mkpkt(1, 1000), simtime.Zero)
	// Inject the anomaly mid-run via an event so determinism holds.
	eng.At(simtime.FromDuration(time.Millisecond), func() {
		sw.SetProcDelay(sw.ProcDelay() + 300*time.Microsecond)
	})
	nw.Inject(src, mkpkt(2, 1000), simtime.FromDuration(2*time.Millisecond))
	eng.Run()

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Second packet pays exactly 300µs more end-to-end.
	base := arrivals[0].Sub(simtime.Zero)
	slow := arrivals[1].Sub(simtime.FromDuration(2 * time.Millisecond))
	if slow-base != 300*time.Microsecond {
		t.Fatalf("anomaly delta = %v, want 300µs", slow-base)
	}
}

func TestSetProcDelayRejectsNegative(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	_, _, _, sw, _ := buildLine(t, link, link)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sw.SetProcDelay(-time.Nanosecond)
}

func TestSetPropagationChangesLatency(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, sw, dst := buildLine(t, link, link)

	sw.Port(0).SetPropagation(450 * time.Microsecond)
	if got := sw.Port(0).Propagation(); got != 450*time.Microsecond {
		t.Fatalf("Propagation = %v", got)
	}

	var at simtime.Time
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { at = now })
	nw.Inject(src, mkpkt(1, 1000), simtime.Zero)
	eng.Run()

	// tx(8µs) + tx(8µs) + prop(450µs) = 466µs.
	if want := simtime.FromDuration(466 * time.Microsecond); at != want {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

func TestSetPropagationRejectsNegative(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	_, _, _, sw, _ := buildLine(t, link, link)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sw.Port(0).SetPropagation(-time.Microsecond)
}

func TestNodeNetworkAccessor(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	n := nw.AddNode(NodeConfig{})
	if n.Network() != nw {
		t.Fatal("Network accessor broken")
	}
	if nw.Node(n.ID()) != n {
		t.Fatal("Node lookup broken")
	}
	if nw.Nodes() != 1 {
		t.Fatalf("Nodes = %d", nw.Nodes())
	}
}

func TestNewPacketIDUnique(t *testing.T) {
	eng := eventsim.New()
	nw := New(eng)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := nw.NewPacketID()
		if seen[id] {
			t.Fatalf("duplicate packet ID %d", id)
		}
		seen[id] = true
	}
}

func TestSetRateChangesTxTime(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	eng, nw, src, sw, dst := buildLine(t, link, link)

	var arrivals []simtime.Time
	dst.OnDeliver(func(p *packet.Packet, now simtime.Time) { arrivals = append(arrivals, now) })

	nw.Inject(src, mkpkt(1, 1500), simtime.Zero)
	// Degrade the switch's output link to a tenth of its rate mid-run, the
	// way the scenario engine's link-degrade fault does.
	eng.At(simtime.FromDuration(time.Millisecond), func() {
		sw.Port(0).SetRate(1e8)
	})
	nw.Inject(src, mkpkt(2, 1500), simtime.FromDuration(2*time.Millisecond))
	eng.Run()

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	base := arrivals[0].Sub(simtime.Zero)
	slow := arrivals[1].Sub(simtime.FromDuration(2 * time.Millisecond))
	// The second packet's last hop serializes at 100 Mbps instead of 1 Gbps:
	// 1500B costs 120µs instead of 12µs, a 108µs delta.
	want := simtime.TxTime(1500, 1e8) - simtime.TxTime(1500, 1e9)
	if slow-base != want {
		t.Fatalf("degrade delta = %v, want %v", slow-base, want)
	}
	if got := sw.Port(0).Rate(); got != 1e8 {
		t.Fatalf("Rate = %v after SetRate", got)
	}
}

func TestSetRateRejectsNonPositive(t *testing.T) {
	link := LinkConfig{RateBps: 1e9}
	_, _, _, sw, _ := buildLine(t, link, link)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sw.Port(0).SetRate(0)
}
