package measure

import (
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// RLI adapts an RLI receiver (internal/core) to the estimator layer: Tap is
// the receiver's Observe hook, and Finalize extracts the per-flow mean
// estimates from the receiver's accumulators. Reference-packet overhead is
// accounted at the tap — every reference frame crossing the segment-end
// point is injected bandwidth this mechanism (and only this mechanism)
// spends.
type RLI struct {
	rx     *core.Receiver
	router string
	refs   Overhead
}

// NewRLI builds an RLI estimator around a fresh receiver. router names the
// measurement instance in the report ("tor3.0", "sw2").
func NewRLI(router string, cfg core.ReceiverConfig) (*RLI, error) {
	rx, err := core.NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	return &RLI{rx: rx, router: router}, nil
}

// Name implements Estimator.
func (r *RLI) Name() string { return "rli" }

// Receiver exposes the wrapped receiver so harnesses can keep their
// existing counter, per-flow and streaming plumbing.
func (r *RLI) Receiver() *core.Receiver { return r.rx }

// Tap implements Estimator. It is exactly the receiver's Observe hook plus
// overhead accounting, so attaching an RLI estimator instead of a bare
// receiver leaves the simulation — and the receiver's results —
// bit-identical.
func (r *RLI) Tap(p *packet.Packet, now simtime.Time) {
	if p.Kind == packet.Reference {
		r.refs.InjectedPkts++
		r.refs.InjectedBytes += uint64(p.Size)
	}
	r.rx.Observe(p, now)
}

// Finalize implements Estimator.
func (r *RLI) Finalize() Report {
	results := r.rx.Results(1)
	return ReportFromFlowResults("rli", r.router, results, r.refs)
}

// ReportFromFlowResults builds an RLI-shaped report from per-flow receiver
// results. Harnesses that own their receiver wiring (the tandem experiment)
// use it to produce the comparison row without re-attaching a second
// receiver.
func ReportFromFlowResults(name, router string, results []core.FlowResult, overhead Overhead) Report {
	rep := Report{Estimator: name, Overhead: overhead}
	var aggW float64
	for _, fr := range results {
		rep.Flows = append(rep.Flows, FlowEstimate{Key: fr.Key, Mean: fr.EstMean, N: fr.N})
		aggW += float64(fr.EstMean) * float64(fr.N)
		rep.AggSamples += fr.N
	}
	if rep.AggSamples > 0 {
		rep.AggMean = time.Duration(aggW / float64(rep.AggSamples))
	}
	rep.Routers = []RouterReport{{Router: router, Flows: len(rep.Flows), Estimates: rep.AggSamples}}
	return rep
}
