// Package measure is the unified estimator layer: one small pluggable API
// that every per-flow latency measurement mechanism in the repository
// implements — RLI interpolation (internal/core), the LDA aggregate sketch
// (internal/lda), NetFlow-style packet sampling, and the Multiflow
// two-timestamp estimator (internal/netflow + internal/multiflow).
//
// The paper's central claim is comparative: RLI delivers per-flow latency
// fidelity that aggregate sketches and NetFlow-derived baselines cannot, at
// bounded active-probing overhead (§5). Making that claim measurable in
// every scenario requires running the mechanisms side by side on the *same*
// packet stream, not on per-mechanism reruns. The layer therefore splits
// into:
//
//   - Estimator: a zero-alloc per-packet Tap at the segment end plus a
//     Finalize returning a Report (per-flow and per-router estimates and an
//     Overhead accounting of injected/sampled bytes). Mechanisms that also
//     observe the segment start (LDA's sender sketch, the sampling and
//     NetFlow baselines' upstream timestamps) additionally implement
//     StartTapper.
//   - Dispatch: the shared tap fan-out a harness attaches at its
//     measurement points — one packet stream, N estimators, no per-packet
//     allocation in the dispatch itself.
//   - Truth: the harness-owned ground-truth table (per-flow true delay
//     accumulators fed from the simulator's SegmentStart stamps) every
//     estimator is scored against by Compare.
//   - Registry (registry.go): named constructors, so scenario specs and
//     CLIs select estimators by name — Names, Registered, New, ParseList.
//
// Two comparison paths exist. Compare scores finalized estimator Reports
// against a harness-owned Truth table (the batch engines). CompareFlowAggs
// (streamcmp.go) scores a collector flow table against the ground truth
// shipped in-band with every sample — the streaming path, which is what a
// long-lived service (internal/service) answers /comparison from without
// any access to the simulation that produced the stream. The two agree
// exactly on the same sample population.
package measure
