package measure

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/lda"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// key returns a distinct flow key per index.
func key(i int) packet.FlowKey {
	return packet.FlowKey{
		Src:     packet.MustParseAddr("10.1.0.1"),
		Dst:     packet.Addr(0x0AC80000 + uint32(i)), // 10.200.x.x
		SrcPort: 1000,
		DstPort: 2000,
		Proto:   packet.ProtoUDP,
	}
}

// segment replays a synthetic measured segment through a dispatch: packets
// of nFlows flows cross with a fixed per-flow delay (flow i delays
// (i+1)*100µs), each packet stamped at the start point exactly as an RLI
// sender would.
func segment(d *Dispatch, nFlows, pktsPerFlow int) {
	id := uint64(1)
	at := simtime.Time(0)
	for n := 0; n < pktsPerFlow; n++ {
		for i := 0; i < nFlows; i++ {
			p := &packet.Packet{ID: id, Key: key(i), Size: 1000, Kind: packet.Regular}
			id++
			at = at.Add(10 * time.Microsecond)
			p.SegmentStart = at
			d.TapStart(p, at)
			d.TapEnd(p, at.Add(time.Duration(i+1)*100*time.Microsecond))
		}
	}
}

func TestTruthAccumulates(t *testing.T) {
	truth := NewTruth()
	d := NewDispatch(truth)
	segment(d, 4, 50)
	if truth.Flows() != 4 || truth.Packets() != 200 {
		t.Fatalf("truth saw %d flows / %d packets, want 4 / 200", truth.Flows(), truth.Packets())
	}
	for i := 0; i < 4; i++ {
		m, ok := truth.FlowMean(key(i))
		if !ok {
			t.Fatalf("flow %d missing from truth", i)
		}
		want := time.Duration(i+1) * 100 * time.Microsecond
		if m != want {
			t.Fatalf("flow %d true mean %v, want %v", i, m, want)
		}
	}
}

// TestBaselinesEstimateConstantDelays drives every baseline over an ideal
// constant-delay segment, where each mechanism's estimate must be (nearly)
// exact: sampling matches true per-packet delays, multiflow's two stamps
// agree with the constant delay (modulo quantization), and LDA's usable
// buckets reproduce the aggregate mean.
func TestBaselinesEstimateConstantDelays(t *testing.T) {
	truth := NewTruth()
	samp := NewSampled(4, 7)
	mf := NewMultiflow(-1) // exact timestamps
	ld := NewLDA(lda.Config{})
	d := NewDispatch(truth, samp, mf, ld)
	segment(d, 4, 64)

	comps := Compare(truth, samp.Finalize(), mf.Finalize(), ld.Finalize())
	for _, c := range comps {
		switch c.Estimator {
		case "netflow-sample":
			if c.Flows == 0 {
				t.Fatal("sampling baseline estimated no flows")
			}
			if c.MedianRelErr > 1e-9 {
				t.Fatalf("sampling on constant delays has median error %v, want ~0", c.MedianRelErr)
			}
			if c.Overhead.SampledRecords == 0 {
				t.Fatal("sampling recorded no overhead")
			}
		case "multiflow":
			if c.Flows != 4 {
				t.Fatalf("multiflow estimated %d flows, want 4", c.Flows)
			}
			if c.MedianRelErr > 1e-9 {
				t.Fatalf("multiflow exact-stamp median error %v, want ~0", c.MedianRelErr)
			}
		case "lda":
			if !math.IsNaN(c.MedianRelErr) {
				t.Fatal("LDA must not report per-flow error")
			}
			// Lossless buckets reproduce the aggregate almost exactly; the
			// residual is multi-bank reweighting (packets sampled into
			// several banks count once per bank).
			if math.IsNaN(c.AggRelErr) || c.AggRelErr > 0.02 {
				t.Fatalf("LDA aggregate error %v, want < 2%%", c.AggRelErr)
			}
			if c.Overhead.SampledBytes == 0 {
				t.Fatal("LDA recorded no sketch overhead")
			}
		}
	}
}

// TestRegistryNamesAndErrors pins the registry surface: six estimators,
// rli first, and unknown names rejected with the valid list.
func TestRegistryNamesAndErrors(t *testing.T) {
	names := Names()
	if len(names) != 6 || names[0] != "rli" {
		t.Fatalf("Names() = %v, want rli first of six", names)
	}
	for _, n := range names {
		if !Registered(n) {
			t.Fatalf("Names() lists %q but Registered denies it", n)
		}
	}
	_, err := New("bogus", Config{})
	if err == nil {
		t.Fatal("unknown estimator accepted")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("error %q does not list valid estimator %q", err, n)
		}
	}
	if _, err := New("rli", Config{}); err == nil {
		t.Fatal("rli without a demux accepted")
	}
}

// TestRLITapMatchesReceiverObserve pins the refactor's equivalence
// contract: feeding packets through the RLI estimator's Tap produces the
// identical receiver state as calling Observe directly.
func TestRLITapMatchesReceiverObserve(t *testing.T) {
	mk := func() (*RLI, *core.Receiver) {
		cfg := core.ReceiverConfig{Demux: core.SingleDemux{ID: 1}}
		est, err := NewRLI("seg", cfg)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := core.NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return est, rx
	}
	est, rx := mk()

	feed := func(tap TapFunc) {
		at := simtime.Time(0)
		for i := 0; i < 300; i++ {
			at = at.Add(50 * time.Microsecond)
			if i%10 == 0 {
				ref := &packet.Packet{ID: uint64(1000 + i), Kind: packet.Reference, Size: 64,
					Ref: packet.RefPayload{Sender: 1, Seq: uint32(i)}}
				ref.Ref.Timestamp = at.Add(-200 * time.Microsecond)
				tap(ref, at)
				continue
			}
			p := &packet.Packet{ID: uint64(i), Key: key(i % 3), Size: 1000, Kind: packet.Regular}
			p.SegmentStart = at.Add(-150 * time.Microsecond)
			tap(p, at)
		}
	}
	feed(est.Tap)
	feed(rx.Observe)

	if est.Receiver().Counters() != rx.Counters() {
		t.Fatalf("counters diverge: %+v vs %+v", est.Receiver().Counters(), rx.Counters())
	}
	a, b := est.Receiver().Results(1), rx.Results(1)
	if len(a) != len(b) {
		t.Fatalf("result lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow result %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
	rep := est.Finalize()
	if rep.Overhead.InjectedPkts != 30 || rep.Overhead.InjectedBytes != 30*64 {
		t.Fatalf("reference overhead %+v, want 30 pkts / %d bytes", rep.Overhead, 30*64)
	}
}

// TestDispatchZeroAllocSteadyState is the shared-tap allocation guarantee:
// once every estimator's per-flow state exists, fanning a packet to the
// full default estimator set (truth + rli + lda + netflow-sample +
// multiflow) allocates nothing.
func TestDispatchZeroAllocSteadyState(t *testing.T) {
	truth := NewTruth()
	rli, err := NewRLI("seg", core.ReceiverConfig{Demux: core.SingleDemux{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatch(truth, rli, NewLDA(lda.Config{}), NewSampled(4, 7), NewMultiflow(0))

	// Warm up: establish flow state, stream state and map capacity.
	segment(d, 8, 64)

	p := &packet.Packet{ID: 5, Key: key(1), Size: 1000, Kind: packet.Regular}
	at := simtime.Time(1 << 30)
	p.SegmentStart = at
	allocs := testing.AllocsPerRun(200, func() {
		at = at.Add(10 * time.Microsecond)
		p.SegmentStart = at
		d.TapStart(p, at)
		d.TapEnd(p, at.Add(100*time.Microsecond))
	})
	if allocs != 0 {
		t.Fatalf("steady-state shared tap allocated %.2f per packet, want 0", allocs)
	}
}

// TestMergeReports pins fleet merging: disjoint per-instance reports
// concatenate, re-sort, and packet-weight the aggregate.
func TestMergeReports(t *testing.T) {
	a := Report{Estimator: "rli",
		Flows:   []FlowEstimate{{Key: key(3), Mean: 300, N: 3}},
		AggMean: 300, AggSamples: 3,
		Routers:  []RouterReport{{Router: "tor3.0", Flows: 1, Estimates: 3}},
		Overhead: Overhead{InjectedPkts: 10, InjectedBytes: 640},
	}
	b := Report{Estimator: "rli",
		Flows:   []FlowEstimate{{Key: key(1), Mean: 100, N: 1}},
		AggMean: 100, AggSamples: 1,
		Routers:  []RouterReport{{Router: "tor3.1", Flows: 1, Estimates: 1}},
		Overhead: Overhead{InjectedPkts: 5, InjectedBytes: 320},
	}
	m := MergeReports("rli", a, b)
	if len(m.Flows) != 2 || !m.Flows[0].Key.Less(m.Flows[1].Key) {
		t.Fatalf("merged flows not sorted: %+v", m.Flows)
	}
	if m.AggSamples != 4 || m.AggMean != 250 {
		t.Fatalf("merged aggregate %v over %d, want 250 over 4", m.AggMean, m.AggSamples)
	}
	if m.Overhead.InjectedPkts != 15 || m.Overhead.InjectedBytes != 960 {
		t.Fatalf("merged overhead %+v", m.Overhead)
	}
	if len(m.Routers) != 2 {
		t.Fatalf("merged routers %+v", m.Routers)
	}
}

// TestRenderComparisons smoke-checks the table renderer, including the
// NaN-as-dash convention for aggregate-only rows.
func TestRenderComparisons(t *testing.T) {
	rows := []Comparison{
		{Estimator: "rli", Flows: 10, Samples: 100, MedianRelErr: 0.1, P99RelErr: 0.5, AggRelErr: 0.02},
		{Estimator: "lda", MedianRelErr: math.NaN(), P99RelErr: math.NaN(), AggRelErr: 0.03},
	}
	out := RenderComparisons(rows)
	if !strings.Contains(out, "rli") || !strings.Contains(out, "lda") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("aggregate-only NaNs not rendered as dashes:\n%s", out)
	}
}
