package measure

import (
	"sort"
	"time"

	"github.com/netmeasure/rlir/internal/multiflow"
	"github.com/netmeasure/rlir/internal/netflow"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// flowRecordBytes is one exported flow record's size, the NetFlow v5
// ballpark: key (13B padded), two timestamps, packet and byte counters.
const flowRecordBytes = 48

// DefaultQuantize is the default flow-record timestamp resolution. NetFlow
// records carry millisecond (sysUpTime) stamps — the principal reason the
// two-sample estimator is crude for microsecond data-center latencies; the
// comparison models the same handicap. Zero disables quantization
// (idealized hardware-stamped records).
const DefaultQuantize = time.Millisecond

// Multiflow adapts the Lee et al. two-timestamp estimator (internal/
// multiflow over internal/netflow meters) to the estimator layer: full
// flow metering at both measurement points, per-flow delay from only the
// first- and last-packet timestamp differences.
type Multiflow struct {
	up, down *netflow.Meter
	quantize time.Duration
}

// NewMultiflow builds the estimator; quantize < 0 selects exact timestamps,
// 0 the DefaultQuantize millisecond resolution.
func NewMultiflow(quantize time.Duration) *Multiflow {
	if quantize == 0 {
		quantize = DefaultQuantize
	}
	if quantize < 0 {
		quantize = 0
	}
	return &Multiflow{
		up:       netflow.NewMeter(netflow.Config{}),
		down:     netflow.NewMeter(netflow.Config{}),
		quantize: quantize,
	}
}

// Name implements Estimator.
func (m *Multiflow) Name() string { return "multiflow" }

// TapStart implements StartTapper.
func (m *Multiflow) TapStart(p *packet.Packet, now simtime.Time) {
	m.up.Observe(p.Key, p.Size, now)
}

// Tap implements Estimator.
func (m *Multiflow) Tap(p *packet.Packet, now simtime.Time) {
	m.down.Observe(p.Key, p.Size, now)
}

// Finalize implements Estimator.
func (m *Multiflow) Finalize() Report {
	ests := multiflow.Estimate(
		m.quantizeRecords(m.up.Snapshot()),
		m.quantizeRecords(m.down.Snapshot()))
	// Meter snapshots iterate maps; sort for a deterministic report.
	sort.Slice(ests, func(i, j int) bool { return ests[i].Key.Less(ests[j].Key) })
	rep := Report{Estimator: m.Name()}
	var aggW float64
	var aggN int64
	for _, e := range ests {
		// Two timestamps per flow regardless of length — N documents that.
		rep.Flows = append(rep.Flows, FlowEstimate{Key: e.Key, Mean: e.Mean, N: 2})
		aggW += float64(e.Mean) * float64(e.Packets)
		aggN += int64(e.Packets)
	}
	if aggN > 0 {
		rep.AggMean = time.Duration(aggW / float64(aggN))
	}
	rep.AggSamples = aggN
	// Every open record at either point is state the exporter carries,
	// whether or not the flow matched across points.
	exported := uint64(m.up.Active() + m.down.Active())
	rep.Overhead = Overhead{
		SampledRecords: exported,
		SampledBytes:   exported * flowRecordBytes,
	}
	rep.Routers = []RouterReport{{Router: "segment", Flows: len(rep.Flows), Estimates: int64(len(rep.Flows)) * 2}}
	return rep
}

func (m *Multiflow) quantizeRecords(recs []netflow.Record) []netflow.Record {
	if m.quantize <= 0 {
		return recs
	}
	step := int64(m.quantize)
	for i := range recs {
		recs[i].First = simtime.Time((int64(recs[i].First) + step/2) / step * step)
		recs[i].Last = simtime.Time((int64(recs[i].Last) + step/2) / step * step)
	}
	return recs
}
