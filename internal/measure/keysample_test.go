package measure

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/trace"
)

func TestShouldSampleRateOneTakesAll(t *testing.T) {
	for _, rate := range []uint64{0, 1} {
		for id := uint64(0); id < 1000; id++ {
			if !ShouldSample(0xdeadbeef, id, rate) {
				t.Fatalf("rate %d skipped id %d; rate <= 1 must sample everything", rate, id)
			}
		}
	}
}

// TestShouldSampleUniformChiSquared draws the keyed sample set over two
// million consecutive packet IDs and chi-squared-tests the sampled counts
// across 64 equal ID buckets: membership must be uniform over the ID space,
// not clustered (a clustered set would let an adversary delay whole ID
// ranges safely, and would bias pair-matching toward bursts). The 99.9%
// critical value at 63 degrees of freedom is 103.4; everything here is a
// pure function of the fixed keys, so the test is deterministic.
func TestShouldSampleUniformChiSquared(t *testing.T) {
	const (
		n       = 1 << 21 // ~2.1M draws
		rate    = 32
		buckets = 64
		shift   = 15 // id >> shift maps [0, n) onto [0, buckets)
	)
	for _, key := range []uint64{1, 0x9e3779b97f4a7c15, 0x5ec2e74b3a9d01} {
		var counts [buckets]int
		total := 0
		for id := uint64(0); id < n; id++ {
			if ShouldSample(key, id, rate) {
				counts[id>>shift]++
				total++
			}
		}
		want := float64(n) / rate
		if frac := float64(total) / want; frac < 0.95 || frac > 1.05 {
			t.Fatalf("key %#x: sampled %d of %d ids, want ~%.0f (1-in-%d)", key, total, n, want, rate)
		}
		exp := want / buckets
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - exp
			chi2 += d * d / exp
		}
		if chi2 > 110 {
			t.Fatalf("key %#x: chi-squared %.1f over %d buckets (99.9%% critical 103.4); sample set is not uniform", key, chi2, buckets)
		}
	}
}

// TestShouldSampleUnpredictableWithoutKey plays the delay-gaming router: a
// header-only observer guessing the keyed sample set with every predictor it
// can compute without the key. Each predictor's overlap with the true set
// must sit at the chance level (independence), within a ±30% tolerance that
// is loose against the binomial noise of a million-draw experiment yet tight
// enough that any real predictive power would trip it. The draw is a pure
// function of the fixed key, so the result is pinned, not flaky.
func TestShouldSampleUnpredictableWithoutKey(t *testing.T) {
	const (
		n    = 1 << 20 // ~1M draws
		rate = 32
		key  = 0x243f6a8885a308d3 // fixed secret the predictors don't see
	)
	predictors := []struct {
		name string
		f    func(id uint64) bool
	}{
		{"periodic", func(id uint64) bool { return id%rate == 0 }},
		{"low-bit", func(id uint64) bool { return id%2 == 0 }},
		{"high-byte", func(id uint64) bool { return (id>>12)%rate == 0 }},
		{"unkeyed-hash", func(id uint64) bool { return trace.SplitMix64(id)%rate == 0 }},
	}
	sampled := make([]bool, n)
	total := 0
	for id := uint64(0); id < n; id++ {
		if ShouldSample(key, id, rate) {
			sampled[id] = true
			total++
		}
	}
	for _, p := range predictors {
		predicted, overlap := 0, 0
		for id := uint64(0); id < n; id++ {
			if !p.f(id) {
				continue
			}
			predicted++
			if sampled[id] {
				overlap++
			}
		}
		// Chance level: independent sets of these sizes overlap in
		// predicted*total/n elements.
		chance := float64(predicted) * float64(total) / float64(n)
		if f := float64(overlap); f < 0.7*chance || f > 1.3*chance {
			t.Fatalf("%s predictor overlaps the keyed sample set in %d of %d predictions (chance %.0f ±30%%): the set is predictable without the key",
				p.name, overlap, predicted, chance)
		}
	}
}

// TestPredictPeriodicIsExact pins the adversary's oracle for the periodic
// baseline: PredictPeriodic and PeriodicSampled use the same rule, so the
// header-only prediction is right on every packet — which is exactly why
// the periodic baseline is gameable.
func TestPredictPeriodicIsExact(t *testing.T) {
	s := NewPeriodicSampled(7)
	for id := uint64(0); id < 10_000; id++ {
		want := periodicSampled(id, 7)
		if PredictPeriodic(id, 7) != want {
			t.Fatalf("PredictPeriodic(%d, 7) disagrees with the sampler", id)
		}
	}
	if PredictPeriodic(0, 0) != periodicSampled(0, DefaultSampleRate) {
		t.Fatal("PredictPeriodic rate 0 must fall back to DefaultSampleRate")
	}
	_ = s
}

// TestPairSamplersEstimateFlows runs both pair-matching samplers over a
// two-point tap sequence with a known constant delay and checks they report
// it for every flow they sampled.
func TestPairSamplersEstimateFlows(t *testing.T) {
	const delay = 150 * time.Microsecond
	for _, tc := range []struct {
		name string
		tap  interface {
			TapStart(*packet.Packet, simtime.Time)
			Tap(*packet.Packet, simtime.Time)
		}
	}{
		{"hash-sample", NewHashSampled(4, 12345)},
		{"periodic-sample", NewPeriodicSampled(4)},
	} {
		// 7 flows against a 1-in-4 rate: coprime, so even the periodic
		// sampler's id-residue subset covers every flow.
		at := simtime.Time(0)
		for i := 0; i < 4000; i++ {
			p := packet.Packet{ID: uint64(i), Key: key(i % 7), Size: 1000, Kind: packet.Regular}
			at = at.Add(time.Microsecond)
			tc.tap.TapStart(&p, at)
			tc.tap.Tap(&p, at.Add(delay))
		}
		rep := tc.tap.(Estimator).Finalize()
		if rep.Estimator != tc.name {
			t.Fatalf("report names %q, want %q", rep.Estimator, tc.name)
		}
		if len(rep.Flows) != 7 {
			t.Fatalf("%s estimated %d flows, want 7", tc.name, len(rep.Flows))
		}
		for _, f := range rep.Flows {
			if f.Mean != delay {
				t.Fatalf("%s flow %v mean %v, want %v", tc.name, f.Key, f.Mean, delay)
			}
		}
		if rep.AggMean != delay || rep.AggSamples == 0 {
			t.Fatalf("%s aggregate %v over %d samples, want %v", tc.name, rep.AggMean, rep.AggSamples, delay)
		}
		if rep.Overhead.SampledRecords == 0 || rep.Overhead.SampledBytes == 0 {
			t.Fatalf("%s accounted no export overhead", tc.name)
		}
	}
}

// BenchmarkHashSampleTap measures the secret-key sampler's per-packet tap
// cost in steady state: two keyed hash evaluations on the fast path and the
// pair-matching bookkeeping on the 1-in-32 sampled path. bench.sh records
// ns/op and allocs/op into BENCH_<N>.json; bench_check.sh gates the cost and
// pins zero allocations per packet.
func BenchmarkHashSampleTap(b *testing.B) {
	h := NewHashSampled(32, 0x243f6a8885a308d3)
	const nFlows = 256
	pkts := make([]packet.Packet, nFlows)
	for i := range pkts {
		pkts[i] = packet.Packet{ID: uint64(i + 1), Key: key(i), Size: 1000, Kind: packet.Regular}
	}
	// Warm-up: establish per-flow Welford state for every sampled flow.
	at := simtime.Time(0)
	for r := 0; r < 4; r++ {
		for i := range pkts {
			at = at.Add(time.Microsecond)
			h.TapStart(&pkts[i], at)
			h.Tap(&pkts[i], at.Add(100*time.Microsecond))
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for n := 0; n < b.N; n++ {
		p := &pkts[n%nFlows]
		at = at.Add(time.Microsecond)
		h.TapStart(p, at)
		h.Tap(p, at.Add(100*time.Microsecond))
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "pkts/s")
	}
}
