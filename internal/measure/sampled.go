package measure

import (
	"sort"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
	"github.com/netmeasure/rlir/internal/trace"
)

// DefaultSampleRate is the sampling baseline's default 1-in-N rate,
// NetFlow's classic 1-in-32 sampled mode.
const DefaultSampleRate = 32

// sampleRecordBytes is one exported timestamp sample: a 64-bit packet
// digest plus a 64-bit timestamp.
const sampleRecordBytes = 16

// Sampled is the NetFlow-style packet-sampling baseline: both measurement
// points sample the same deterministic 1-in-N subset of packets (hashing
// the invariant packet ID, as trajectory sampling does), timestamp them,
// and matched pairs yield per-packet delays folded into per-flow means.
// Accuracy degrades with the sampling rate — a flow shorter than N packets
// usually contributes no estimate at all, which is exactly the blind spot
// the paper holds against sampled NetFlow (§5).
type Sampled struct {
	rate     uint64
	seed     uint64
	inflight map[uint64]simtime.Time
	flows    map[packet.FlowKey]*stats.Welford
	overhead Overhead
}

// NewSampled builds the baseline at a 1-in-rate sampling rate (rate < 1
// uses DefaultSampleRate). seed keys the sampling hash; both taps share it
// by construction.
func NewSampled(rate int, seed int64) *Sampled {
	if rate < 1 {
		rate = DefaultSampleRate
	}
	return &Sampled{
		rate:     uint64(rate),
		seed:     uint64(seed),
		inflight: make(map[uint64]simtime.Time),
		flows:    make(map[packet.FlowKey]*stats.Welford),
	}
}

// Name implements Estimator.
func (s *Sampled) Name() string { return "netflow-sample" }

// sampled decides deterministically whether a packet is in the sampled
// subset — the same decision at both measurement points.
func (s *Sampled) sampled(id uint64) bool {
	return s.rate == 1 || trace.SplitMix64(id^s.seed)%s.rate == 0
}

// TapStart implements StartTapper: sampled packets are timestamped on
// entry.
func (s *Sampled) TapStart(p *packet.Packet, now simtime.Time) {
	if !s.sampled(p.ID) {
		return
	}
	s.inflight[p.ID] = now
	s.overhead.SampledRecords++
	s.overhead.SampledBytes += sampleRecordBytes
}

// Tap implements Estimator: a sampled packet seen at both points yields one
// delay sample for its flow.
func (s *Sampled) Tap(p *packet.Packet, now simtime.Time) {
	if !s.sampled(p.ID) {
		return
	}
	s.overhead.SampledRecords++
	s.overhead.SampledBytes += sampleRecordBytes
	start, ok := s.inflight[p.ID]
	if !ok {
		return // entry sample lost (e.g. tapped only downstream)
	}
	delete(s.inflight, p.ID)
	w, ok := s.flows[p.Key]
	if !ok {
		w = &stats.Welford{}
		s.flows[p.Key] = w
	}
	w.Add(float64(now.Sub(start)))
}

// Finalize implements Estimator.
func (s *Sampled) Finalize() Report {
	rep := Report{Estimator: s.Name(), Overhead: s.overhead}
	var agg stats.Welford
	for key, w := range s.flows {
		rep.Flows = append(rep.Flows, FlowEstimate{Key: key, Mean: time.Duration(w.Mean()), N: w.N()})
		agg.Merge(w)
	}
	sort.Slice(rep.Flows, func(i, j int) bool { return rep.Flows[i].Key.Less(rep.Flows[j].Key) })
	rep.AggMean = time.Duration(agg.Mean())
	rep.AggSamples = agg.N()
	rep.Routers = []RouterReport{{Router: "segment", Flows: len(rep.Flows), Estimates: agg.N()}}
	return rep
}
