package measure

import (
	"math"
	"sort"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
)

// Estimator is one latency-measurement mechanism attached to a measured
// segment. Tap observes every accepted packet at the segment end (the
// downstream measurement point); it must not allocate in steady state —
// dispatch sits on the simulator's per-packet hot path. Finalize extracts
// the mechanism's deliverable after the run; it may allocate freely.
type Estimator interface {
	// Name returns the registry name ("rli", "lda", ...).
	Name() string
	// Tap observes one packet at the segment-end measurement point.
	Tap(p *packet.Packet, now simtime.Time)
	// Finalize computes the estimator's report. Call once, after the run.
	Finalize() Report
}

// StartTapper is implemented by estimators that also observe the
// segment-start measurement point: LDA's sender-side sketch and the
// NetFlow-derived baselines' upstream timestamps. RLI does not implement it
// — its segment-start information travels in reference packets.
type StartTapper interface {
	// TapStart observes one packet at the segment-start measurement point.
	TapStart(p *packet.Packet, now simtime.Time)
}

// Overhead accounts what a mechanism costs. The two axes are the paper's
// §5 comparison: RLI spends wire bandwidth (injected reference packets);
// the passive baselines spend collection state and export volume (sampled
// timestamps, flow records, sketch buckets).
type Overhead struct {
	// InjectedPkts / InjectedBytes count active probe packets added to the
	// measured segment's wire.
	InjectedPkts  uint64
	InjectedBytes uint64
	// SampledRecords / SampledBytes count the passive collection units the
	// mechanism must store and export: per-packet timestamp samples,
	// NetFlow records, or sketch buckets.
	SampledRecords uint64
	SampledBytes   uint64
}

// Add accumulates o into v.
func (v *Overhead) Add(o Overhead) {
	v.InjectedPkts += o.InjectedPkts
	v.InjectedBytes += o.InjectedBytes
	v.SampledRecords += o.SampledRecords
	v.SampledBytes += o.SampledBytes
}

// FlowEstimate is one flow's estimated mean delay.
type FlowEstimate struct {
	Key packet.FlowKey
	// Mean is the estimated mean per-packet delay across the segment.
	Mean time.Duration
	// N counts the samples behind the estimate (per-packet estimates for
	// RLI, sampled packets for the sampling baseline, 2 for Multiflow).
	N int64
}

// RouterReport is one measurement instance's share of a report — the
// per-router granularity the scenario engine's comparison table groups by.
type RouterReport struct {
	// Router names the instance's location ("tor3.0", "sw2", "fleet").
	Router string
	// Flows / Estimates count what the instance measured.
	Flows     int
	Estimates int64
}

// Report is one estimator's deliverable for a finished run.
type Report struct {
	// Estimator is the registry name of the mechanism that produced it.
	Estimator string
	// Flows lists per-flow estimates sorted by flow key (empty for
	// aggregate-only mechanisms like LDA).
	Flows []FlowEstimate
	// AggMean is the mechanism's aggregate mean-delay estimate over every
	// packet/flow it could use, and AggSamples the count behind it. For
	// aggregate-only mechanisms this is the entire deliverable.
	AggMean    time.Duration
	AggSamples int64
	// Routers breaks the report down per measurement instance.
	Routers []RouterReport
	// Overhead accounts the mechanism's cost on this run.
	Overhead Overhead
}

// MergeReports combines per-instance reports of one mechanism (e.g. the
// per-monitored-ToR RLI receivers) into a single fleet report. Flow sets of
// the inputs must be disjoint (each flow terminates at one instance); the
// merged flow list is re-sorted by key.
func MergeReports(name string, reports ...Report) Report {
	out := Report{Estimator: name}
	var aggW float64
	for _, r := range reports {
		out.Flows = append(out.Flows, r.Flows...)
		out.Routers = append(out.Routers, r.Routers...)
		out.Overhead.Add(r.Overhead)
		aggW += float64(r.AggMean) * float64(r.AggSamples)
		out.AggSamples += r.AggSamples
	}
	if out.AggSamples > 0 {
		out.AggMean = time.Duration(aggW / float64(out.AggSamples))
	}
	sort.Slice(out.Flows, func(i, j int) bool { return out.Flows[i].Key.Less(out.Flows[j].Key) })
	return out
}

// Truth is the harness-owned ground-truth table: per-flow and aggregate
// accumulators of the simulator's true segment delays, fed from the
// SegmentStart stamp the RLI sender writes at the segment-start point.
// Every estimator is scored against the same Truth, so relative errors are
// comparable across mechanisms regardless of which packets each one used.
type Truth struct {
	flows map[packet.FlowKey]*stats.Welford
	agg   stats.Welford
}

// NewTruth returns an empty ground-truth table.
func NewTruth() *Truth {
	return &Truth{flows: make(map[packet.FlowKey]*stats.Welford)}
}

// Tap folds one segment-end observation: the packet's true delay is the
// observation instant minus its stamped segment start. Steady-state cost is
// one map lookup and one Welford fold; a new flow's accumulator allocates
// once.
func (t *Truth) Tap(p *packet.Packet, now simtime.Time) {
	d := float64(now.Sub(p.SegmentStart))
	w, ok := t.flows[p.Key]
	if !ok {
		w = &stats.Welford{}
		t.flows[p.Key] = w
	}
	w.Add(d)
	t.agg.Add(d)
}

// Flows returns the number of flows observed.
func (t *Truth) Flows() int { return len(t.flows) }

// Packets returns the number of packets observed.
func (t *Truth) Packets() int64 { return t.agg.N() }

// AggMean returns the true aggregate mean delay.
func (t *Truth) AggMean() time.Duration { return time.Duration(t.agg.Mean()) }

// FlowMean returns one flow's true mean delay.
func (t *Truth) FlowMean(key packet.FlowKey) (time.Duration, bool) {
	w, ok := t.flows[key]
	if !ok {
		return 0, false
	}
	return time.Duration(w.Mean()), true
}

// Comparison is one row of the estimator comparison table: how a
// mechanism's report scores against the shared ground truth.
type Comparison struct {
	// Estimator is the mechanism's registry name.
	Estimator string
	// Flows counts flows with both an estimate and ground truth; Samples
	// counts the estimate samples behind them.
	Flows   int
	Samples int64
	// MedianRelErr / P99RelErr summarize the per-flow relative error
	// distribution |estMean - trueMean| / trueMean. NaN for aggregate-only
	// mechanisms.
	MedianRelErr float64
	P99RelErr    float64
	// AggMean / AggRelErr score the aggregate mean-delay estimate against
	// the true aggregate mean; AggSamples counts the observations behind
	// it (zero means the mechanism saw no traffic at all).
	AggMean    time.Duration
	AggSamples int64
	AggRelErr  float64
	// Misattribution is the demux audit for mechanisms that attribute
	// packets to reference streams (RLI); zero otherwise. The harness fills
	// it — attribution ground truth lives outside the estimator.
	Misattribution float64
	// Overhead is copied from the report.
	Overhead Overhead
}

// Compare scores reports against truth, one row per report, in input
// order.
func Compare(truth *Truth, reports ...Report) []Comparison {
	out := make([]Comparison, 0, len(reports))
	for _, r := range reports {
		c := Comparison{
			Estimator:    r.Estimator,
			AggMean:      r.AggMean,
			AggSamples:   r.AggSamples,
			Overhead:     r.Overhead,
			MedianRelErr: math.NaN(),
			P99RelErr:    math.NaN(),
			AggRelErr:    math.NaN(),
		}
		if trueAgg := truth.AggMean(); trueAgg > 0 && r.AggSamples > 0 {
			c.AggRelErr = stats.RelErr(float64(r.AggMean), float64(trueAgg))
		}
		errs := make([]float64, 0, len(r.Flows))
		for _, f := range r.Flows {
			trueMean, ok := truth.FlowMean(f.Key)
			if !ok || trueMean <= 0 {
				continue
			}
			c.Flows++
			c.Samples += f.N
			errs = append(errs, stats.RelErr(float64(f.Mean), float64(trueMean)))
		}
		if len(errs) > 0 {
			cdf := stats.NewCDF(errs)
			c.MedianRelErr = cdf.Median()
			c.P99RelErr = cdf.Quantile(0.99)
		}
		out = append(out, c)
	}
	return out
}

// TapFunc is a per-packet observation callback. It has the same signature
// as netsim.TapFunc, so Dispatch methods attach directly to netsim ports
// and nodes without this package depending on the simulator.
type TapFunc = func(p *packet.Packet, now simtime.Time)

// Dispatch fans one measured segment's packet stream to a set of
// estimators (and, at the segment end, the ground-truth table). The
// callback lists are fixed at construction, so the per-packet path is a
// slice walk over pre-bound method values — no allocation, no per-packet
// interface assertions.
type Dispatch struct {
	end   []TapFunc
	start []TapFunc
}

// NewDispatch builds the shared tap for a measured segment. truth (may be
// nil) and every estimator receive segment-end observations; estimators
// implementing StartTapper additionally receive segment-start
// observations.
func NewDispatch(truth *Truth, ests ...Estimator) *Dispatch {
	d := &Dispatch{}
	if truth != nil {
		d.end = append(d.end, truth.Tap)
	}
	for _, e := range ests {
		d.end = append(d.end, e.Tap)
		if st, ok := e.(StartTapper); ok {
			d.start = append(d.start, st.TapStart)
		}
	}
	return d
}

// TapStart feeds one segment-start observation to every estimator that
// wants one. Attach it at the upstream measurement point.
func (d *Dispatch) TapStart(p *packet.Packet, now simtime.Time) {
	for _, t := range d.start {
		t(p, now)
	}
}

// TapEnd feeds one segment-end observation to the truth table and every
// estimator. Attach it at the downstream measurement point.
func (d *Dispatch) TapEnd(p *packet.Packet, now simtime.Time) {
	for _, t := range d.end {
		t(p, now)
	}
}

// Taps returns the number of segment-end callbacks (diagnostics).
func (d *Dispatch) Taps() int { return len(d.end) }
