package measure

import (
	"github.com/netmeasure/rlir/internal/lda"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// ldaBucketBytes is one sketch bucket's export size: a 64-bit timestamp sum
// plus a 64-bit packet counter.
const ldaBucketBytes = 16

// LDAEstimator adapts the Lossy Difference Aggregator (internal/lda) to the
// estimator layer: mirrored sender/receiver sketches fed from the segment
// start and end taps, extracted into an aggregate mean-delay estimate at
// Finalize. LDA is deliberately aggregate-only — its comparison row has no
// per-flow error, which is the paper's point (§5: "only provides aggregate
// measurements").
type LDAEstimator struct {
	sender, receiver *lda.LDA
	cfg              lda.Config
}

// NewLDA builds mirrored sketches from cfg (zero value: lda.DefaultConfig).
func NewLDA(cfg lda.Config) *LDAEstimator {
	if cfg == (lda.Config{}) {
		cfg = lda.DefaultConfig()
	}
	return &LDAEstimator{sender: lda.New(cfg), receiver: lda.New(cfg), cfg: cfg}
}

// Name implements Estimator.
func (l *LDAEstimator) Name() string { return "lda" }

// TapStart implements StartTapper: the sender-side sketch records every
// packet entering the segment.
func (l *LDAEstimator) TapStart(p *packet.Packet, now simtime.Time) {
	l.sender.Record(p.ID, now)
}

// Tap implements Estimator: the receiver-side sketch records every packet
// leaving the segment.
func (l *LDAEstimator) Tap(p *packet.Packet, now simtime.Time) {
	l.receiver.Record(p.ID, now)
}

// Finalize implements Estimator.
func (l *LDAEstimator) Finalize() Report {
	est, err := lda.Extract(l.sender, l.receiver)
	if err != nil {
		// Both sketches are built from one config; a mismatch is a
		// programming error, not a runtime condition.
		panic(err)
	}
	buckets := uint64(2 * l.cfg.Banks * l.cfg.Rows) // both sketch halves export
	return Report{
		Estimator:  "lda",
		AggMean:    est.MeanDelay,
		AggSamples: int64(est.UsablePackets),
		Routers:    []RouterReport{{Router: "segment", Flows: 0, Estimates: int64(est.UsablePackets)}},
		Overhead: Overhead{
			SampledRecords: buckets,
			SampledBytes:   buckets * ldaBucketBytes,
		},
	}
}

// Extract exposes the raw LDA estimate (sketch health, loss estimate) for
// harnesses that report more than the comparison row.
func (l *LDAEstimator) Extract() (lda.Estimate, error) {
	return lda.Extract(l.sender, l.receiver)
}
