package measure

import (
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/lda"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
)

// BenchmarkSharedTap measures the shared dispatch's per-packet cost with
// the full default estimator set attached (truth + rli + lda +
// netflow-sample + multiflow): the overhead the scenario engine pays per
// forwarded packet for running the whole comparison matrix on one pass.
// bench.sh records pkts/s into BENCH_<N>.json; bench_check.sh gates
// regressions.
func BenchmarkSharedTap(b *testing.B) {
	truth := NewTruth()
	rli, err := NewRLI("seg", core.ReceiverConfig{Demux: core.SingleDemux{ID: 1}})
	if err != nil {
		b.Fatal(err)
	}
	d := NewDispatch(truth, rli, NewLDA(lda.Config{}), NewSampled(0, 1), NewMultiflow(0))

	const nFlows = 256
	pkts := make([]packet.Packet, nFlows)
	for i := range pkts {
		pkts[i] = packet.Packet{ID: uint64(i + 1), Key: key(i), Size: 1000, Kind: packet.Regular}
	}
	// Warm-up: establish per-flow state in every estimator.
	at := simtime.Time(0)
	for r := 0; r < 4; r++ {
		for i := range pkts {
			at = at.Add(time.Microsecond)
			pkts[i].SegmentStart = at
			d.TapStart(&pkts[i], at)
			d.TapEnd(&pkts[i], at.Add(100*time.Microsecond))
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for n := 0; n < b.N; n++ {
		p := &pkts[n%nFlows]
		at = at.Add(time.Microsecond)
		p.SegmentStart = at
		d.TapStart(p, at)
		d.TapEnd(p, at.Add(100*time.Microsecond))
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "pkts/s")
	}
}
