package measure

import (
	"sort"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/simtime"
	"github.com/netmeasure/rlir/internal/stats"
	"github.com/netmeasure/rlir/internal/trace"
)

// Secret-key hash sampling vs the predictable baseline it replaces.
//
// A compromised router that wants to hide added latency only has to spare
// the packets it predicts will be measured: RLI reference packets are
// identifiable on the wire, and a periodic sampler's subset (every Nth
// packet ID) is computable from headers alone. ShouldSample closes that
// hole — the sample set is a keyed hash of the invariant packet ID, so
// without the secret key the router cannot do better than chance at
// predicting membership, and it must decide whether to delay a packet
// BEFORE the measurement points reveal anything. HashSampled (registered as
// "hash-sample") builds the pair-matching estimator on that decision;
// PeriodicSampled ("periodic-sample") is the naive header-predictable
// baseline the adversarial-delay scenario defeats.

// ShouldSample reports whether the packet with invariant id belongs to the
// keyed 1-in-rate sample set. Both measurement points share key and rate,
// so they pick the same subset with no coordination; an observer without
// the key sees a set indistinguishable from a uniform random 1/rate draw
// (pinned by the chi-squared and adversary-prediction property tests).
// rate <= 1 samples everything.
func ShouldSample(key, id uint64, rate uint64) bool {
	if rate <= 1 {
		return true
	}
	// Two keyed SplitMix64 rounds: a single round is a public bijection of
	// id^key, and re-keying between rounds keeps the composition from being
	// invertible without the key.
	return trace.SplitMix64(trace.SplitMix64(id^key)^key)%rate == 0
}

// pairCore is the shared state of the pair-matching samplers: entry
// timestamps for sampled packets awaiting their exit observation, per-flow
// Welford folds of the matched delays, and export-overhead accounting.
type pairCore struct {
	inflight map[uint64]simtime.Time
	flows    map[packet.FlowKey]*stats.Welford
	overhead Overhead
}

func newPairCore() pairCore {
	return pairCore{
		inflight: make(map[uint64]simtime.Time),
		flows:    make(map[packet.FlowKey]*stats.Welford),
	}
}

// start timestamps a sampled packet at the entry measurement point.
func (c *pairCore) start(id uint64, now simtime.Time) {
	c.inflight[id] = now
	c.overhead.SampledRecords++
	c.overhead.SampledBytes += sampleRecordBytes
}

// end matches a sampled packet's exit observation with its entry timestamp,
// folding the delay into the packet's flow.
func (c *pairCore) end(p *packet.Packet, now simtime.Time) {
	c.overhead.SampledRecords++
	c.overhead.SampledBytes += sampleRecordBytes
	start, ok := c.inflight[p.ID]
	if !ok {
		return // entry sample lost (e.g. tapped only downstream)
	}
	delete(c.inflight, p.ID)
	w, ok := c.flows[p.Key]
	if !ok {
		w = &stats.Welford{}
		c.flows[p.Key] = w
	}
	w.Add(float64(now.Sub(start)))
}

// finalize builds the report.
func (c *pairCore) finalize(name string) Report {
	rep := Report{Estimator: name, Overhead: c.overhead}
	var agg stats.Welford
	for key, w := range c.flows {
		rep.Flows = append(rep.Flows, FlowEstimate{Key: key, Mean: time.Duration(w.Mean()), N: w.N()})
		agg.Merge(w)
	}
	sort.Slice(rep.Flows, func(i, j int) bool { return rep.Flows[i].Key.Less(rep.Flows[j].Key) })
	rep.AggMean = time.Duration(agg.Mean())
	rep.AggSamples = agg.N()
	rep.Routers = []RouterReport{{Router: "segment", Flows: len(rep.Flows), Estimates: agg.N()}}
	return rep
}

// HashSampled is the secret-key sampling estimator: the same pair-matching
// mechanism as Sampled, but membership comes from ShouldSample's keyed hash
// instead of a seed both parties treat as public configuration. Because a
// router cannot evaluate the hash without the key, it cannot selectively
// delay only unmeasured packets — the property the adversarial-delay
// scenario scores.
type HashSampled struct {
	pairCore
	key  uint64
	rate uint64
}

// NewHashSampled builds the estimator at a 1-in-rate sampling rate
// (rate < 1 uses DefaultSampleRate) with the given secret key.
func NewHashSampled(rate int, key uint64) *HashSampled {
	if rate < 1 {
		rate = DefaultSampleRate
	}
	return &HashSampled{pairCore: newPairCore(), key: key, rate: uint64(rate)}
}

// Name implements Estimator.
func (h *HashSampled) Name() string { return "hash-sample" }

// TapStart implements StartTapper: keyed-sampled packets are timestamped on
// entry.
func (h *HashSampled) TapStart(p *packet.Packet, now simtime.Time) {
	if !ShouldSample(h.key, p.ID, h.rate) {
		return
	}
	h.start(p.ID, now)
}

// Tap implements Estimator: a keyed-sampled packet seen at both points
// yields one delay sample for its flow.
func (h *HashSampled) Tap(p *packet.Packet, now simtime.Time) {
	if !ShouldSample(h.key, p.ID, h.rate) {
		return
	}
	h.end(p, now)
}

// Finalize implements Estimator.
func (h *HashSampled) Finalize() Report { return h.finalize(h.Name()) }

// PeriodicSampled is the naive count-based sampling baseline: every Nth
// packet ID. Its subset is computable from packet headers alone, which is
// exactly what a delay-gaming router exploits — it exists to quantify that
// failure next to hash-sample's detection.
type PeriodicSampled struct {
	pairCore
	rate uint64
}

// NewPeriodicSampled builds the baseline at a 1-in-rate sampling rate
// (rate < 1 uses DefaultSampleRate).
func NewPeriodicSampled(rate int) *PeriodicSampled {
	if rate < 1 {
		rate = DefaultSampleRate
	}
	return &PeriodicSampled{pairCore: newPairCore(), rate: uint64(rate)}
}

// Name implements Estimator.
func (s *PeriodicSampled) Name() string { return "periodic-sample" }

// PeriodicSampled's membership test — exported logic in one place so the
// adversary model in internal/scenario predicts with exactly the same rule.
func periodicSampled(id, rate uint64) bool {
	return rate <= 1 || id%rate == 0
}

// PredictPeriodic reports whether a header-only observer using the periodic
// rule would predict packet id to be sampled. It is the adversary's oracle
// for the periodic baseline (and, by construction, always right).
func PredictPeriodic(id uint64, rate int) bool {
	if rate < 1 {
		rate = DefaultSampleRate
	}
	return periodicSampled(id, uint64(rate))
}

// TapStart implements StartTapper.
func (s *PeriodicSampled) TapStart(p *packet.Packet, now simtime.Time) {
	if !periodicSampled(p.ID, s.rate) {
		return
	}
	s.start(p.ID, now)
}

// Tap implements Estimator.
func (s *PeriodicSampled) Tap(p *packet.Packet, now simtime.Time) {
	if !periodicSampled(p.ID, s.rate) {
		return
	}
	s.end(p, now)
}

// Finalize implements Estimator.
func (s *PeriodicSampled) Finalize() Report { return s.finalize(s.Name()) }
