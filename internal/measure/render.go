package measure

import (
	"fmt"
	"math"
	"strings"
)

// fmtErr renders a relative error, with "-" for mechanisms that do not
// produce the metric (NaN).
func fmtErr(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

// RenderComparisons formats the estimator comparison table — the
// per-scenario view of the paper's §5 claim: per-flow fidelity (relative
// errors), attribution quality, and what each mechanism costs (injected
// wire bytes vs sampled collection bytes).
func RenderComparisons(rows []Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %7s %9s %10s %10s %8s %8s %10s %10s\n",
		"estimator", "flows", "samples", "medianErr", "p99Err", "aggErr", "misattr", "injBytes", "smpBytes")
	for _, c := range rows {
		fmt.Fprintf(&b, "%-16s %7d %9d %10s %10s %8s %8.4f %10d %10d\n",
			c.Estimator, c.Flows, c.Samples,
			fmtErr(c.MedianRelErr), fmtErr(c.P99RelErr), fmtErr(c.AggRelErr),
			c.Misattribution, c.Overhead.InjectedBytes, c.Overhead.SampledBytes)
	}
	return b.String()
}
