package measure

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/core"
	"github.com/netmeasure/rlir/internal/lda"
	"github.com/netmeasure/rlir/internal/trace"
)

// Config parameterizes estimator construction. Zero values select the
// documented defaults; each estimator reads only its own fields.
type Config struct {
	// Seed keys every hash an estimator derives (sampling decisions, LDA
	// buckets). Harnesses pass the run seed so estimator state is
	// reproducible with the run.
	Seed int64
	// Router names the measurement instance for per-router reports.
	Router string
	// Receiver configures the RLI receiver ("rli" only; Demux required).
	Receiver core.ReceiverConfig
	// LDA overrides the sketch shape ("lda" only; zero: lda.DefaultConfig
	// keyed by Seed).
	LDA lda.Config
	// SampleRate is the sampling baselines' 1-in-N rate ("netflow-sample",
	// "hash-sample", "periodic-sample"; 0: DefaultSampleRate).
	SampleRate int
	// SecretKey keys "hash-sample"'s ShouldSample hash. Zero derives a key
	// from Seed — convenient for harnesses, but a deployment hiding the
	// sample set from the routers it measures must set an explicit key.
	SecretKey uint64
	// Quantize is the flow-record timestamp resolution ("multiflow" only;
	// 0: DefaultQuantize, negative: exact timestamps).
	Quantize time.Duration
}

// Constructor builds a named estimator from a config.
type Constructor func(cfg Config) (Estimator, error)

var registry = map[string]Constructor{}

// Register adds a named constructor. It panics on duplicates — estimator
// names are part of the scenario spec surface and must be unambiguous.
func Register(name string, c Constructor) {
	if _, dup := registry[name]; dup {
		panic("measure: duplicate estimator registration of " + name)
	}
	if c == nil {
		panic("measure: nil constructor for " + name)
	}
	registry[name] = c
}

// Names returns every registered estimator name with "rli" (the mechanism
// under test) first and the baselines after it in sorted order — the
// default comparison set.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		if n != "rli" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	if _, ok := registry["rli"]; ok {
		out = append([]string{"rli"}, out...)
	}
	return out
}

// Registered reports whether name is a known estimator.
func Registered(name string) bool {
	_, ok := registry[name]
	return ok
}

// New builds a registered estimator. Unknown names fail listing the valid
// ones, so a CLI/CI user can fix the spelling without reading code.
func New(name string, cfg Config) (Estimator, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("measure: unknown estimator %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	return c(cfg)
}

func init() {
	Register("rli", func(cfg Config) (Estimator, error) {
		router := cfg.Router
		if router == "" {
			router = "segment"
		}
		return NewRLI(router, cfg.Receiver)
	})
	Register("lda", func(cfg Config) (Estimator, error) {
		lcfg := cfg.LDA
		if lcfg == (lda.Config{}) {
			lcfg = lda.DefaultConfig()
			lcfg.Seed ^= uint64(cfg.Seed)
		}
		return NewLDA(lcfg), nil
	})
	Register("netflow-sample", func(cfg Config) (Estimator, error) {
		return NewSampled(cfg.SampleRate, cfg.Seed), nil
	})
	Register("hash-sample", func(cfg Config) (Estimator, error) {
		key := cfg.SecretKey
		if key == 0 {
			key = trace.SplitMix64(uint64(cfg.Seed) ^ 0x5ec2e7_4b3a9d01)
		}
		return NewHashSampled(cfg.SampleRate, key), nil
	})
	Register("periodic-sample", func(cfg Config) (Estimator, error) {
		return NewPeriodicSampled(cfg.SampleRate), nil
	})
	Register("multiflow", func(cfg Config) (Estimator, error) {
		return NewMultiflow(cfg.Quantize), nil
	})
}

// ParseList splits a comma-separated estimator list, trimming whitespace
// and skipping empty items, and validates every name against the
// registry. It is the shared front-end for every CLI -estimators flag.
func ParseList(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !Registered(n) {
			return nil, fmt.Errorf("unknown estimator %q (registered: %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, n)
	}
	return out, nil
}

// NewSet builds one estimator per name. It fails on the first unknown
// name.
func NewSet(names []string, cfg Config) ([]Estimator, error) {
	out := make([]Estimator, 0, len(names))
	for _, n := range names {
		e, err := New(n, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
