package measure

import (
	"math"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/stats"
)

// CompareFlowAggs scores a collector flow table against the ground truth it
// carries in-band: every ingested Sample ships the simulator's true delay
// next to the estimate, so a collector aggregate holds matched per-flow
// estimate and truth accumulators and a comparison row can be computed from
// a snapshot alone. This is the streaming counterpart of Compare — it is
// what a long-lived measurement service answers /comparison from, with no
// access to the simulation that produced the stream — and it is exact: the
// same samples folded through the same Welford accumulators yield
// bit-identical means whether they arrived in one batch or over a socket.
func CompareFlowAggs(name string, aggs []collector.FlowAgg) Comparison {
	c := Comparison{
		Estimator:    name,
		MedianRelErr: math.NaN(),
		P99RelErr:    math.NaN(),
		AggRelErr:    math.NaN(),
	}
	var estW, trueW float64
	errs := make([]float64, 0, len(aggs))
	for i := range aggs {
		a := &aggs[i]
		n := a.Est.N()
		if n == 0 {
			continue
		}
		c.AggSamples += n
		estW += a.Est.Mean() * float64(n)
		trueW += a.True.Mean() * float64(n)
		if trueMean := a.True.Mean(); trueMean > 0 {
			c.Flows++
			c.Samples += n
			errs = append(errs, stats.RelErr(a.Est.Mean(), trueMean))
		}
	}
	if c.AggSamples > 0 {
		c.AggMean = time.Duration(estW / float64(c.AggSamples))
		if trueAgg := trueW / float64(c.AggSamples); trueAgg > 0 {
			c.AggRelErr = stats.RelErr(estW/float64(c.AggSamples), trueAgg)
		}
	}
	if len(errs) > 0 {
		cdf := stats.NewCDF(errs)
		c.MedianRelErr = cdf.Median()
		c.P99RelErr = cdf.Quantile(0.99)
	}
	return c
}
