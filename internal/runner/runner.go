package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/trace"
)

// Seeds derives n independent, reproducible run seeds from base.
func Seeds(base int64, n int) []int64 { return trace.DeriveSeeds(base, n) }

// Workers normalizes a worker-count knob: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs job(i, seeds[i]) for every seed across at most workers
// goroutines and returns the results in seed order, regardless of
// completion order. workers <= 0 uses GOMAXPROCS; the single-worker path
// runs inline (no goroutines), which keeps 1-worker sweeps exactly as
// debuggable as a plain loop.
func Map[R any](seeds []int64, workers int, job func(i int, seed int64) R) []R {
	n := len(seeds)
	out := make([]R, n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, s := range seeds {
			out[i] = job(i, s)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = job(i, seeds[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Sink batches one run's per-packet estimates into a collector. It is
// single-producer state (one Sink per run); the shared collector handles
// cross-run concurrency. Bind it to a receiver via Add as the OnEstimate
// hook and call Flush when the run ends.
type Sink struct {
	c     *collector.Collector
	buf   []collector.Sample
	batch int
}

// DefaultBatch is the sample batch size a Sink flushes at: large enough to
// amortize channel sends, small enough to keep collector queues shallow.
const DefaultBatch = 256

// NewSink creates a sink feeding c in batches of the given size (<= 0 uses
// DefaultBatch).
func NewSink(c *collector.Collector, batch int) *Sink {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Sink{c: c, buf: make([]collector.Sample, 0, batch), batch: batch}
}

// Add buffers one estimate; its signature matches core.EstimateFunc.
func (s *Sink) Add(key packet.FlowKey, est, truth time.Duration) {
	s.buf = append(s.buf, collector.Sample{Key: key, Est: est, True: truth})
	if len(s.buf) >= s.batch {
		s.Flush()
	}
}

// Flush hands the buffered batch to the collector. The collector copies
// during partitioning, so the buffer is immediately reusable.
func (s *Sink) Flush() {
	s.c.Ingest(s.buf)
	s.buf = s.buf[:0]
}

// Run is the context handed to a SweepInto job.
type Run struct {
	// Index is the run's position in the seed list.
	Index int
	// Seed is the run's derived seed.
	Seed int64
	// Sink streams the run's samples into the sweep's shared collector.
	// The runner flushes it after the job returns.
	Sink *Sink
}

// SweepInto fans jobs over seeds with at most workers goroutines, streaming
// every run's samples into the shared collector c. Results are returned in
// seed order. The caller owns c (snapshot/close); per-flow aggregates for
// flows unique to one run are bit-deterministic, while flows appearing in
// several runs merge in run-completion order (document accordingly or merge
// per-run snapshots instead).
func SweepInto[R any](c *collector.Collector, seeds []int64, workers int, job func(Run) R) []R {
	return Map(seeds, workers, func(i int, seed int64) R {
		sink := NewSink(c, 0)
		r := job(Run{Index: i, Seed: seed, Sink: sink})
		sink.Flush()
		return r
	})
}
