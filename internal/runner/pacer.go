package runner

import (
	"time"
)

// Pacer is a wall-clock token bucket: Wait(n) admits n units per call at a
// sustained target rate, sleeping when the caller runs ahead. It is what
// cmd/loadgen paces frame batches with when replaying a captured scenario
// trace against a live service at a configured samples/s — the wall-clock
// counterpart of the simulation-time pacing everything else in this package
// does. A Pacer is single-goroutine state; give each replaying connection
// its own (with its share of the target rate).
type Pacer struct {
	perUnit time.Duration
	// next is the earliest instant the next unit may be admitted.
	next time.Time
	// slack bounds how far behind schedule the bucket may fall before the
	// deficit is forgiven; without it a long stall would be followed by an
	// unbounded catch-up burst.
	slack time.Duration
	now   func() time.Time
	sleep func(time.Duration)
}

// NewPacer creates a pacer admitting rate units/second. rate <= 0 returns a
// nil pacer, and a nil *Pacer admits everything immediately — "unlimited"
// needs no call-site branching.
func NewPacer(rate float64) *Pacer {
	if rate <= 0 {
		return nil
	}
	return &Pacer{
		perUnit: time.Duration(float64(time.Second) / rate),
		slack:   100 * time.Millisecond,
		now:     time.Now,
		sleep:   time.Sleep,
	}
}

// Wait blocks until n more units may be sent at the configured rate.
func (p *Pacer) Wait(n int) {
	if p == nil || n <= 0 {
		return
	}
	now := p.now()
	if p.next.IsZero() {
		// First admission starts the schedule at now — no free startup
		// burst; slack is forgiveness for stalls, not an opening credit.
		p.next = now
	} else if now.Sub(p.next) > p.slack {
		p.next = now.Add(-p.slack)
	}
	if d := p.next.Sub(now); d > 0 {
		p.sleep(d)
	}
	p.next = p.next.Add(time.Duration(n) * p.perUnit)
}
