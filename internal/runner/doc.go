// Package runner orchestrates parallel multi-seed experiment sweeps: many
// independent simulations (each single-goroutine and deterministic per seed)
// fanned across workers, with per-run telemetry merged through the
// collector plane.
//
// Determinism contract: a job must depend only on its (index, seed) pair —
// eventsim engines, generators and receivers are all built inside the job —
// so the result slice is identical for any worker count; only wall-clock
// changes. Seeds come from trace.DeriveSeeds (SplitMix64), so run i's random
// streams are independent of run j's.
//
// The pieces:
//
//   - Map fans job(i, seed) across at most w workers, results in seed
//     order; SweepInto additionally streams every run's samples into a
//     shared collector through per-run Sinks.
//   - Sink batches one run's per-packet estimates into collector ingest
//     batches (bind Add to a receiver's OnEstimate hook).
//   - Pacer (pacer.go) is the wall-clock counterpart: a token bucket that
//     paces replay traffic (cmd/loadgen) at a target rate against the live
//     service, where simulation time does not apply.
package runner
