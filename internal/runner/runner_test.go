package runner

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/netmeasure/rlir/internal/collector"
	"github.com/netmeasure/rlir/internal/packet"
)

// TestMapOrderAndCoverage: results land at their seed's index for any
// worker count, every seed runs exactly once.
func TestMapOrderAndCoverage(t *testing.T) {
	seeds := Seeds(99, 17)
	for _, workers := range []int{1, 2, 4, 32} {
		got := Map(seeds, workers, func(i int, seed int64) [2]int64 {
			time.Sleep(time.Duration(i%3) * time.Millisecond) // scramble completion order
			return [2]int64{int64(i), seed}
		})
		for i := range got {
			if got[i][0] != int64(i) || got[i][1] != seeds[i] {
				t.Fatalf("workers=%d: slot %d holds run %v", workers, i, got[i])
			}
		}
	}
}

// TestMapWorkerCountInvariance: a deterministic job yields bit-identical
// results regardless of parallelism — the runner's core contract.
func TestMapWorkerCountInvariance(t *testing.T) {
	seeds := Seeds(3, 12)
	job := func(i int, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, 50)
		for j := range out {
			out[j] = rng.NormFloat64()
		}
		return out
	}
	want := Map(seeds, 1, job)
	for _, workers := range []int{2, 3, 8} {
		if got := Map(seeds, workers, job); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential run", workers)
		}
	}
}

// TestSweepIntoMergesThroughCollector: per-run sample streams land merged in
// the shared collector, and per-flow aggregates for run-unique flows match
// a sequential sweep exactly.
func TestSweepIntoMergesThroughCollector(t *testing.T) {
	seeds := Seeds(42, 6)
	const perRun = 700
	job := func(r Run) int {
		rng := rand.New(rand.NewSource(r.Seed))
		// Flow keys embed the run index -> disjoint across runs.
		for j := 0; j < perRun; j++ {
			key := packet.FlowKey{
				Src: packet.Addr(0x0a000000 + uint32(r.Index)), Dst: packet.Addr(rng.Uint32()%16 + 1),
				SrcPort: uint16(rng.Intn(4)), DstPort: 80, Proto: packet.ProtoTCP,
			}
			r.Sink.Add(key, time.Duration(rng.Int63n(1e6)), time.Duration(rng.Int63n(1e6)))
		}
		return r.Index
	}

	run := func(workers int) ([]collector.FlowAgg, []int) {
		c := collector.New(collector.Config{Shards: 3, Depth: 4})
		res := SweepInto(c, seeds, workers, job)
		snap := c.Snapshot()
		c.Close()
		return snap, res
	}
	wantSnap, wantRes := run(1)
	gotSnap, gotRes := run(4)
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("results differ: %v vs %v", gotRes, wantRes)
	}
	if !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Fatalf("collector state differs across worker counts (%d vs %d flows)", len(gotSnap), len(wantSnap))
	}
	var n uint64
	for _, a := range wantSnap {
		n += uint64(a.Est.N())
	}
	if n != uint64(len(seeds)*perRun) {
		t.Fatalf("collector holds %d samples, want %d", n, len(seeds)*perRun)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must default to >= 1")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}
