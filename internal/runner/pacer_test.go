package runner

import (
	"testing"
	"time"
)

// fakeClock drives a Pacer deterministically: sleeps advance virtual time.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (f *fakeClock) now() time.Time        { return f.t }
func (f *fakeClock) sleep(d time.Duration) { f.t = f.t.Add(d); f.slept += d }

func testPacer(rate float64) (*Pacer, *fakeClock) {
	p := NewPacer(rate)
	fc := &fakeClock{t: time.Unix(0, 0)}
	p.now = fc.now
	p.sleep = fc.sleep
	return p, fc
}

func TestPacerSustainedRate(t *testing.T) {
	p, fc := testPacer(1000) // 1ms per unit
	for i := 0; i < 10; i++ {
		p.Wait(100) // 100ms of budget per call
	}
	// 1000 units at 1000/s = 1s of schedule; the first batch is admitted
	// against the initial slack, everything else must have slept.
	if fc.slept < 800*time.Millisecond || fc.slept > time.Second {
		t.Fatalf("slept %v for 1000 units at 1000/s, want ~0.9s", fc.slept)
	}
}

func TestPacerForgivesStalls(t *testing.T) {
	p, fc := testPacer(1000)
	p.Wait(50)
	// The producer stalls far past the schedule; the deficit must be
	// forgiven instead of admitting an unbounded burst.
	fc.t = fc.t.Add(10 * time.Second)
	before := fc.slept
	p.Wait(1)
	p.Wait(500) // would be "free" if the 10s deficit were banked
	p.Wait(1)   // pays the 500-unit schedule from the previous call
	if burst := fc.slept - before; burst < 300*time.Millisecond {
		t.Fatalf("slept only %v after a stall; deficit was banked into a burst", burst)
	}
}

func TestPacerNilIsUnlimited(t *testing.T) {
	if p := NewPacer(0); p != nil {
		t.Fatal("rate 0 should return a nil (unlimited) pacer")
	}
	var p *Pacer
	p.Wait(1 << 20) // must not panic or block
}
