// Command loadgen soak-tests a running rlird — or a whole fleet of them:
// it captures a scenario's export stream (every per-packet latency sample
// and NetFlow record the scenario's instruments produced) and replays it as
// collector wire frames through the fleet router, -conns connections per
// endpoint, at a configurable rate — line rate by default.
//
// -addr takes a comma-separated endpoint list. Flows are partitioned across
// endpoints and connections by flow hash with per-flow order preserved, the
// collector plane's determinism contract, so a replayed run aggregates
// bit-identically to the batch engine no matter how connections interleave
// — and a fleet's merged tables match a single node's. With -duration the
// capture loops until the wall clock expires; otherwise it is replayed
// exactly once (the equivalence mode: the service's /flows table then
// matches the scenario's own fleet table).
//
// With -churn N the replay keeps the capture's latency values but rewrites
// sample keys to cycle through N distinct synthetic flows — the soak mode
// for a memory-bounded rlird (-max-flows), where millions of distinct
// FlowKeys must churn through a fixed-size table without growing it.
//
// With -reliable the frames travel over the swp sliding-window transport
// (sequence-numbered segments, acks, retransmission), and -loss interposes
// a seeded loss model on the outbound segments — a soak that makes rlird
// recover the stream across an emulated lossy export path. -connect-attempts
// and -connect-timeout let loadgen start before rlird and retry the dial
// with exponential backoff and jitter.
//
// Usage:
//
//	loadgen -scenario baseline-tandem -addr 127.0.0.1:7171 -conns 4
//	loadgen -scenario incast -unix /tmp/rlird.sock -rate 2000000 -duration 10s
//	loadgen -spec my.json -seed 7 -addr 127.0.0.1:7171 -records
//	loadgen -scenario incast -addr 127.0.0.1:7171 -reliable -loss 0.05
//	loadgen -scenario baseline-tandem -addr 127.0.0.1:7171 -churn 1000000 -duration 30s
//	loadgen -scenario baseline-tandem -addr 127.0.0.1:7171,127.0.0.1:7271 -conns 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	scenarioName string
	specFile     string
	seed         int64
	addr         string
	unixPath     string
	conns        int
	rate         float64
	duration     time.Duration
	batch        int
	records      bool
	jsonOut      bool

	churn int

	reliable        bool
	loss            float64
	lossSeed        int64
	connectTimeout  time.Duration
	connectAttempts int
}

// parseArgs parses and validates the command line. Split from run so tests
// can exercise the flag surface without running simulations or sockets.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&o.scenarioName, "scenario", "", "registered scenario to capture and replay (see cmd/scenario -list)")
	fs.StringVar(&o.specFile, "spec", "", "ad-hoc scenario spec JSON file to capture and replay")
	fs.Int64Var(&o.seed, "seed", 0, "override the spec seed (0 keeps the spec's)")
	fs.StringVar(&o.addr, "addr", "", "rlird TCP ingest address(es), comma-separated for a fleet")
	fs.StringVar(&o.unixPath, "unix", "", "rlird Unix-socket ingest path")
	fs.IntVar(&o.conns, "conns", 4, "concurrent replay connections per endpoint")
	fs.Float64Var(&o.rate, "rate", 0, "total samples/s across connections (0 = line rate)")
	fs.DurationVar(&o.duration, "duration", 0, "loop the capture for this long (0 = one pass)")
	fs.IntVar(&o.batch, "batch", 512, "samples per wire frame")
	fs.BoolVar(&o.records, "records", false, "also replay the capture's NetFlow records")
	fs.IntVar(&o.churn, "churn", 0, "rewrite sample keys to cycle this many distinct synthetic flows (0 = replay keys as captured)")
	fs.BoolVar(&o.jsonOut, "json", false, "print the summary as JSON")
	fs.BoolVar(&o.reliable, "reliable", false, "tunnel frames over the swp sliding-window transport")
	fs.Float64Var(&o.loss, "loss", 0, "drop this fraction of outbound segments (requires -reliable)")
	fs.Int64Var(&o.lossSeed, "loss-seed", 1, "seed for the -loss impairment streams")
	fs.DurationVar(&o.connectTimeout, "connect-timeout", 10*time.Second, "per-attempt dial timeout")
	fs.IntVar(&o.connectAttempts, "connect-attempts", 1, "dial attempts before giving up (backoff with jitter between)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if (o.scenarioName == "") == (o.specFile == "") {
		return o, fmt.Errorf("need exactly one of -scenario, -spec")
	}
	if o.scenarioName != "" {
		if _, ok := rlir.ScenarioByName(o.scenarioName); !ok {
			return o, fmt.Errorf("unknown scenario %q (registered: %s)",
				o.scenarioName, strings.Join(rlir.ScenarioNames(), ", "))
		}
	}
	if (o.addr == "") == (o.unixPath == "") {
		return o, fmt.Errorf("need exactly one of -addr, -unix")
	}
	if o.addr != "" {
		seen := map[string]bool{}
		for _, ep := range strings.Split(o.addr, ",") {
			if ep == "" {
				return o, fmt.Errorf("-addr %q has an empty endpoint", o.addr)
			}
			if seen[ep] {
				return o, fmt.Errorf("-addr lists endpoint %q twice", ep)
			}
			seen[ep] = true
		}
	}
	if o.conns < 1 {
		return o, fmt.Errorf("-conns %d < 1", o.conns)
	}
	if o.rate < 0 {
		return o, fmt.Errorf("-rate %v < 0", o.rate)
	}
	if o.batch < 1 {
		return o, fmt.Errorf("-batch %d < 1", o.batch)
	}
	if o.churn < 0 {
		return o, fmt.Errorf("-churn %d < 0", o.churn)
	}
	if o.churn > 0 && o.records {
		return o, fmt.Errorf("-churn rewrites sample keys; -records would replay records under their original keys")
	}
	if o.loss < 0 || o.loss >= 1 {
		return o, fmt.Errorf("-loss %v outside [0, 1)", o.loss)
	}
	if o.loss > 0 && !o.reliable {
		return o, fmt.Errorf("-loss requires -reliable (raw framing cannot survive dropped frames)")
	}
	if o.connectAttempts < 1 {
		return o, fmt.Errorf("-connect-attempts %d < 1", o.connectAttempts)
	}
	if o.connectTimeout <= 0 {
		return o, fmt.Errorf("-connect-timeout %v <= 0", o.connectTimeout)
	}
	return o, nil
}

// summary is the replay outcome.
type summary struct {
	Scenario  string  `json:"scenario"`
	Seed      int64   `json:"seed"`
	Endpoints int     `json:"endpoints"`
	Conns     int     `json:"conns"`
	Samples   uint64  `json:"samples_sent"`
	Records   uint64  `json:"records_sent"`
	Frames    uint64  `json:"frames_sent"`
	Dropped   uint64  `json:"samples_dropped,omitempty"`
	Passes    uint64  `json:"capture_passes"`
	Elapsed   float64 `json:"elapsed_s"`
	PerSecond float64 `json:"samples_per_s"`
	// DistinctFlows is how many distinct synthetic flows the stream visited
	// (zero unless -churn).
	DistinctFlows int `json:"distinct_flows,omitempty"`
	// Reliable-transport accounting, aggregated across connections (zero
	// unless -reliable).
	Reliable    bool   `json:"reliable,omitempty"`
	Segments    uint64 `json:"segments_sent,omitempty"`
	Retransmits uint64 `json:"retransmits,omitempty"`
	Timeouts    uint64 `json:"timeouts,omitempty"`
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}

	var spec rlir.ScenarioSpec
	if o.scenarioName != "" {
		sc, _ := rlir.ScenarioByName(o.scenarioName)
		spec = sc.Spec
	} else {
		data, err := os.ReadFile(o.specFile)
		if err != nil {
			return err
		}
		if spec, err = rlir.DecodeScenarioSpec(data); err != nil {
			return err
		}
	}
	seed := spec.Seed
	if o.seed != 0 {
		seed = o.seed
	}

	fmt.Fprintf(out, "loadgen: capturing scenario %s (seed %d)...\n", spec.Name, seed)
	tr, err := rlir.ExportScenarioTrace(spec, seed)
	if err != nil {
		return err
	}
	if len(tr.Samples) == 0 {
		return fmt.Errorf("scenario %s produced no samples to replay", spec.Name)
	}
	fmt.Fprintf(out, "loadgen: captured %d samples, %d records across %d flows\n",
		len(tr.Samples), len(tr.Records), len(tr.Result.Fleet))

	sum, err := replay(o, tr)
	if err != nil {
		return err
	}
	sum.Scenario = spec.Name
	sum.Seed = seed
	if o.jsonOut {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	fmt.Fprintf(out, "loadgen: sent %d samples (%d records, %d frames, %d passes) over %d conns to %d endpoint(s) in %.2fs = %.0f samples/s\n",
		sum.Samples, sum.Records, sum.Frames, sum.Passes, sum.Conns, sum.Endpoints, sum.Elapsed, sum.PerSecond)
	if sum.DistinctFlows > 0 {
		fmt.Fprintf(out, "loadgen: churn mode cycled %d distinct flows\n", sum.DistinctFlows)
	}
	if sum.Reliable {
		fmt.Fprintf(out, "loadgen: reliable transport: %d segments, %d retransmits, %d timeouts\n",
			sum.Segments, sum.Retransmits, sum.Timeouts)
	}
	return nil
}

// churnKey maps a churn id to a distinct synthetic 5-tuple. Ids below 2^32
// stay distinct through Src alone (XOR covers the whole 32-bit space), so
// -churn N really does visit N distinct flows for any realistic N.
func churnKey(id uint64) rlir.FlowKey {
	return rlir.FlowKey{
		Src:     rlir.Addr(0x0a000000 ^ uint32(id)),
		Dst:     rlir.Addr(0x0b000000 + uint32(id>>32)),
		SrcPort: uint16(1024 + id%32768),
		DstPort: 7171,
		Proto:   6,
	}
}

// replay streams the capture through the fleet router, looping until the
// duration expires (or once when unset). The router owns partitioning:
// every flow's samples and records land on one (endpoint, connection) sink
// in production order — with a single endpoint this is exactly the
// per-connection split loadgen historically computed inline.
func replay(o options, tr *rlir.ScenarioTrace) (summary, error) {
	network, endpoints := "tcp", strings.Split(o.addr, ",")
	if o.unixPath != "" {
		network, endpoints = "unix", []string{o.unixPath}
	}
	epIndex := make(map[string]int, len(endpoints))
	for i, ep := range endpoints {
		epIndex[ep] = i
	}
	r, err := rlir.NewFleetRouter(rlir.FleetRouterConfig{
		Endpoints:        endpoints,
		ConnsPerEndpoint: o.conns,
		Name:             "loadgen",
		Batch:            o.batch,
		Dial: func(endpoint string, conn int) (rlir.FleetSink, error) {
			opts := rlir.ServiceDialOptions{
				Network:        network,
				Addr:           endpoint,
				Batch:          o.batch,
				ConnectTimeout: o.connectTimeout,
				Attempts:       o.connectAttempts,
				Reliable:       o.reliable,
			}
			if o.loss > 0 {
				// Drop-only impairment, one independent stream per
				// connection: retransmission recovery is the thing under
				// soak, against a real service.
				flat := epIndex[endpoint]*o.conns + conn
				opts.Impair = &rlir.TransportImpairment{Seed: o.lossSeed + int64(flat), Drop: o.loss}
			}
			return rlir.DialServiceWith(opts)
		},
	})
	if err != nil {
		return summary{}, err
	}

	deadline := time.Time{}
	if o.duration > 0 {
		deadline = time.Now().Add(o.duration)
	}
	pacer := rlir.NewPacer(o.rate)
	var passes, churnID uint64
	var scratch []rlir.CollectorSample
	if o.churn > 0 {
		scratch = make([]rlir.CollectorSample, 0, o.batch)
	}
	start := time.Now()
replay:
	for {
		for off := 0; off < len(tr.Samples); off += o.batch {
			end := off + o.batch
			if end > len(tr.Samples) {
				end = len(tr.Samples)
			}
			pacer.Wait(end - off)
			batch := tr.Samples[off:end]
			if o.churn > 0 {
				// Churn mode: keep the capture's latency values but walk the
				// keys through -churn distinct synthetic flows, one id per
				// sample. The capture is never mutated — replay loops reuse it.
				scratch = append(scratch[:0], batch...)
				for i := range scratch {
					scratch[i].Key = churnKey(churnID % uint64(o.churn))
					churnID++
				}
				batch = scratch
			}
			r.RouteSamples(batch)
			if !deadline.IsZero() && time.Now().After(deadline) {
				break replay
			}
		}
		if o.records {
			r.RouteRecords(tr.Records)
		}
		passes++
		if deadline.IsZero() || time.Now().After(deadline) {
			break
		}
	}
	closeErr := r.Close()
	elapsed := time.Since(start)

	s := summary{
		Endpoints: len(endpoints),
		Conns:     len(endpoints) * o.conns,
		Passes:    passes,
		Elapsed:   elapsed.Seconds(),
		Reliable:  o.reliable,
	}
	for _, es := range r.Stats() {
		s.Samples += es.SamplesSent
		s.Records += es.RecordsSent
		s.Frames += es.FramesSent
		s.Dropped += es.Dropped
	}
	if st, ok := r.TransportStats(); ok {
		s.Segments = st.Segments
		s.Retransmits = st.Retransmits
		s.Timeouts = st.Timeouts
	}
	if o.churn > 0 {
		visited := churnID
		if visited > uint64(o.churn) {
			visited = uint64(o.churn)
		}
		s.DistinctFlows = int(visited)
	}
	if closeErr != nil {
		return summary{}, closeErr
	}
	if elapsed > 0 {
		s.PerSecond = float64(s.Samples) / elapsed.Seconds()
	}
	return s, nil
}
