package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error; "" = must parse
	}{
		{"scenario tcp", []string{"-scenario", "incast", "-addr", "127.0.0.1:7171"}, ""},
		{"spec unix", []string{"-spec", "x.json", "-unix", "/tmp/r.sock"}, ""},
		{"rated", []string{"-scenario", "incast", "-addr", "a:1", "-rate", "1e6", "-conns", "8", "-duration", "10s"}, ""},
		{"records json", []string{"-scenario", "incast", "-addr", "a:1", "-records", "-json"}, ""},
		{"no source", []string{"-addr", "a:1"}, "exactly one of -scenario, -spec"},
		{"two sources", []string{"-scenario", "incast", "-spec", "x.json", "-addr", "a:1"}, "exactly one of -scenario, -spec"},
		{"no target", []string{"-scenario", "incast"}, "exactly one of -addr, -unix"},
		{"two targets", []string{"-scenario", "incast", "-addr", "a:1", "-unix", "/s"}, "exactly one of -addr, -unix"},
		{"unknown scenario", []string{"-scenario", "bogus", "-addr", "a:1"}, "unknown scenario"},
		{"zero conns", []string{"-scenario", "incast", "-addr", "a:1", "-conns", "0"}, "-conns"},
		{"negative rate", []string{"-scenario", "incast", "-addr", "a:1", "-rate", "-5"}, "-rate"},
		{"zero batch", []string{"-scenario", "incast", "-addr", "a:1", "-batch", "0"}, "-batch"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"-scenario", "incast", "-addr", "a:1", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestUnknownScenarioListsRegistry pins the rejection contract.
func TestUnknownScenarioListsRegistry(t *testing.T) {
	_, err := parseArgs([]string{"-scenario", "bogus", "-addr", "a:1"})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range rlir.ScenarioNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list scenario %q", err, name)
		}
	}
}

// TestReplayAgainstLiveService drives the full path end to end: an
// in-process service, a real capture, a 4-connection single-pass replay,
// and the equivalence check — the service's flow table matches the
// scenario's own fleet table exactly.
func TestReplayAgainstLiveService(t *testing.T) {
	s, err := rlir.NewMeasurementService(rlir.ServiceConfig{Listen: "127.0.0.1:0", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(t.Context())

	var out strings.Builder
	args := []string{"-scenario", "baseline-tandem", "-addr", s.Addr().String(), "-conns", "4", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	// The summary is the last JSON object in the output.
	text := out.String()
	var sum summary
	if err := json.Unmarshal([]byte(text[strings.Index(text, "{"):]), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, text)
	}
	if sum.Conns != 4 || sum.Samples == 0 || sum.Passes < 4 {
		t.Fatalf("summary wrong: %+v", sum)
	}

	// Everything sent must be ingested (sends are synchronous writes, but
	// the service's reads drain asynchronously).
	deadlineWait(t, s, sum.Samples)
	sc, _ := rlir.ScenarioByName("baseline-tandem")
	tr, err := rlir.ExportScenarioTrace(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != len(tr.Result.Fleet) {
		t.Fatalf("service has %d flows, batch engine %d", len(snap), len(tr.Result.Fleet))
	}
	for i := range snap {
		a, b := snap[i], tr.Result.Fleet[i]
		if a.Key != b.Key || a.Est != b.Est || a.True != b.True {
			t.Fatalf("flow %d diverged after replay:\nservice %+v\nbatch   %+v", i, a, b)
		}
	}
}

func deadlineWait(t *testing.T, s *rlir.MeasurementService, want uint64) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if s.Collector().SamplesIngested() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("ingested %d of %d samples", s.Collector().SamplesIngested(), want)
}
