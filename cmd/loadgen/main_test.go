package main

import (
	"encoding/json"
	"errors"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
	"github.com/netmeasure/rlir/internal/collector"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error; "" = must parse
	}{
		{"scenario tcp", []string{"-scenario", "incast", "-addr", "127.0.0.1:7171"}, ""},
		{"spec unix", []string{"-spec", "x.json", "-unix", "/tmp/r.sock"}, ""},
		{"rated", []string{"-scenario", "incast", "-addr", "a:1", "-rate", "1e6", "-conns", "8", "-duration", "10s"}, ""},
		{"records json", []string{"-scenario", "incast", "-addr", "a:1", "-records", "-json"}, ""},
		{"no source", []string{"-addr", "a:1"}, "exactly one of -scenario, -spec"},
		{"two sources", []string{"-scenario", "incast", "-spec", "x.json", "-addr", "a:1"}, "exactly one of -scenario, -spec"},
		{"no target", []string{"-scenario", "incast"}, "exactly one of -addr, -unix"},
		{"two targets", []string{"-scenario", "incast", "-addr", "a:1", "-unix", "/s"}, "exactly one of -addr, -unix"},
		{"unknown scenario", []string{"-scenario", "bogus", "-addr", "a:1"}, "unknown scenario"},
		{"zero conns", []string{"-scenario", "incast", "-addr", "a:1", "-conns", "0"}, "-conns"},
		{"negative rate", []string{"-scenario", "incast", "-addr", "a:1", "-rate", "-5"}, "-rate"},
		{"zero batch", []string{"-scenario", "incast", "-addr", "a:1", "-batch", "0"}, "-batch"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"-scenario", "incast", "-addr", "a:1", "extra"}, "unexpected arguments"},
		{"fleet addr", []string{"-scenario", "incast", "-addr", "a:1,b:2", "-conns", "2"}, ""},
		{"empty endpoint", []string{"-scenario", "incast", "-addr", "a:1,"}, "empty endpoint"},
		{"duplicate endpoint", []string{"-scenario", "incast", "-addr", "a:1,a:1"}, "twice"},
		{"reliable", []string{"-scenario", "incast", "-addr", "a:1", "-reliable"}, ""},
		{"reliable lossy", []string{"-scenario", "incast", "-addr", "a:1", "-reliable", "-loss", "0.05"}, ""},
		{"retrying", []string{"-scenario", "incast", "-addr", "a:1", "-connect-attempts", "5", "-connect-timeout", "2s"}, ""},
		{"loss without reliable", []string{"-scenario", "incast", "-addr", "a:1", "-loss", "0.05"}, "-loss requires -reliable"},
		{"loss out of range", []string{"-scenario", "incast", "-addr", "a:1", "-reliable", "-loss", "1.5"}, "-loss"},
		{"negative loss", []string{"-scenario", "incast", "-addr", "a:1", "-reliable", "-loss", "-0.1"}, "-loss"},
		{"zero attempts", []string{"-scenario", "incast", "-addr", "a:1", "-connect-attempts", "0"}, "-connect-attempts"},
		{"zero connect timeout", []string{"-scenario", "incast", "-addr", "a:1", "-connect-timeout", "0s"}, "-connect-timeout"},
		{"churn", []string{"-scenario", "incast", "-addr", "a:1", "-churn", "1000000"}, ""},
		{"negative churn", []string{"-scenario", "incast", "-addr", "a:1", "-churn", "-1"}, "-churn"},
		{"churn with records", []string{"-scenario", "incast", "-addr", "a:1", "-churn", "100", "-records"}, "-churn rewrites sample keys"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestUnknownScenarioListsRegistry pins the rejection contract.
func TestUnknownScenarioListsRegistry(t *testing.T) {
	_, err := parseArgs([]string{"-scenario", "bogus", "-addr", "a:1"})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range rlir.ScenarioNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list scenario %q", err, name)
		}
	}
}

// TestReplayAgainstLiveService drives the full path end to end: an
// in-process service, a real capture, a 4-connection single-pass replay,
// and the equivalence check — the service's flow table matches the
// scenario's own fleet table exactly.
func TestReplayAgainstLiveService(t *testing.T) {
	s, err := rlir.NewMeasurementService(rlir.ServiceConfig{Listen: "127.0.0.1:0", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(t.Context())

	var out strings.Builder
	args := []string{"-scenario", "baseline-tandem", "-addr", s.Addr().String(), "-conns", "4", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	// The summary is the last JSON object in the output.
	text := out.String()
	var sum summary
	if err := json.Unmarshal([]byte(text[strings.Index(text, "{"):]), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, text)
	}
	if sum.Endpoints != 1 || sum.Conns != 4 || sum.Samples == 0 || sum.Passes != 1 {
		t.Fatalf("summary wrong: %+v", sum)
	}

	// Everything sent must be ingested (sends are synchronous writes, but
	// the service's reads drain asynchronously).
	deadlineWait(t, s, sum.Samples)
	sc, _ := rlir.ScenarioByName("baseline-tandem")
	tr, err := rlir.ExportScenarioTrace(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != len(tr.Result.Fleet) {
		t.Fatalf("service has %d flows, batch engine %d", len(snap), len(tr.Result.Fleet))
	}
	for i := range snap {
		a, b := snap[i], tr.Result.Fleet[i]
		if a.Key != b.Key || a.Est != b.Est || a.True != b.True {
			t.Fatalf("flow %d diverged after replay:\nservice %+v\nbatch   %+v", i, a, b)
		}
	}
}

// TestChurnKeyDistinct pins the churn-id mapping: consecutive ids give
// distinct flow keys, so -churn N visits exactly N flows.
func TestChurnKeyDistinct(t *testing.T) {
	seen := make(map[rlir.FlowKey]bool, 100000)
	for id := uint64(0); id < 100000; id++ {
		k := churnKey(id)
		if seen[k] {
			t.Fatalf("churnKey(%d) = %+v repeats an earlier key", id, k)
		}
		seen[k] = true
	}
}

// TestChurnReplayAgainstBoundedService is the churn soak in miniature: a
// key-rewriting replay against a service with a 64-flow cap must keep the
// live table at the cap, evict into the rollup tiers, and conserve every
// sample across table + classes + router.
func TestChurnReplayAgainstBoundedService(t *testing.T) {
	s, err := rlir.NewMeasurementService(rlir.ServiceConfig{
		Listen: "127.0.0.1:0", Shards: 2, MaxFlows: 64, MaxClasses: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(t.Context())

	var out strings.Builder
	args := []string{"-scenario", "baseline-tandem", "-addr", s.Addr().String(), "-conns", "2", "-churn", "1000", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	text := out.String()
	var sum summary
	if err := json.Unmarshal([]byte(text[strings.Index(text, "{"):]), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, text)
	}
	wantDistinct := 1000
	if sum.Samples < 1000 {
		wantDistinct = int(sum.Samples)
	}
	if sum.DistinctFlows != wantDistinct {
		t.Fatalf("summary reports %d distinct flows, want %d (from %d samples)",
			sum.DistinctFlows, wantDistinct, sum.Samples)
	}

	deadlineWait(t, s, sum.Samples)
	st := s.Collector().Stats()
	if st.Flows > 64 {
		t.Fatalf("live table holds %d flows, cap 64", st.Flows)
	}
	if st.Evicted == 0 {
		t.Fatalf("churning %d flows through a 64-flow cap evicted nothing: %+v", sum.DistinctFlows, st)
	}
	roll := s.Collector().RollupSnapshot()
	var total int64
	for _, a := range s.Snapshot() {
		total += a.Est.N()
	}
	for i := range roll.Classes {
		total += roll.Classes[i].Est.N()
	}
	total += roll.Root.Est.N()
	if uint64(total) != sum.Samples {
		t.Fatalf("table+rollup cover %d samples, sent %d", total, sum.Samples)
	}
}

// TestReliableLossyReplay is the lossy soak in miniature: a replay over the
// swp transport with 15% of outbound segments dropped must still land the
// service's flow table bit-identical to the batch engine — and must have
// actually retransmitted to get there. The small batch keeps frames to
// roughly one segment each, so the drop model gets ~100 segments to bite.
func TestReliableLossyReplay(t *testing.T) {
	s, err := rlir.NewMeasurementService(rlir.ServiceConfig{Listen: "127.0.0.1:0", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(t.Context())

	var out strings.Builder
	args := []string{"-scenario", "baseline-tandem", "-addr", s.Addr().String(),
		"-conns", "2", "-batch", "32", "-reliable", "-loss", "0.15", "-loss-seed", "3", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	text := out.String()
	var sum summary
	if err := json.Unmarshal([]byte(text[strings.Index(text, "{"):]), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, text)
	}
	if !sum.Reliable || sum.Segments == 0 {
		t.Fatalf("summary lacks transport accounting: %+v", sum)
	}
	if sum.Retransmits == 0 {
		t.Fatalf("8%% loss produced zero retransmits: %+v", sum)
	}

	deadlineWait(t, s, sum.Samples)
	sc, _ := rlir.ScenarioByName("baseline-tandem")
	tr, err := rlir.ExportScenarioTrace(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != len(tr.Result.Fleet) {
		t.Fatalf("service has %d flows, batch engine %d", len(snap), len(tr.Result.Fleet))
	}
	for i := range snap {
		a, b := snap[i], tr.Result.Fleet[i]
		if a.Key != b.Key || a.Est != b.Est || a.True != b.True {
			t.Fatalf("flow %d diverged after lossy replay:\nservice %+v\nbatch   %+v", i, a, b)
		}
	}
}

// TestReplayAcrossFleet replays one capture across two rlird instances via a
// comma-separated -addr list: each instance must own a strict flow-disjoint
// partition, and the merged tables must be bit-identical to the batch
// engine's single-node fleet table.
func TestReplayAcrossFleet(t *testing.T) {
	var servers [2]*rlir.MeasurementService
	for i := range servers {
		s, err := rlir.NewMeasurementService(rlir.ServiceConfig{Listen: "127.0.0.1:0", Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(t.Context())
		servers[i] = s
	}

	var out strings.Builder
	addrs := servers[0].Addr().String() + "," + servers[1].Addr().String()
	args := []string{"-scenario", "baseline-tandem", "-addr", addrs, "-conns", "2", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	text := out.String()
	var sum summary
	if err := json.Unmarshal([]byte(text[strings.Index(text, "{"):]), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, text)
	}
	if sum.Endpoints != 2 || sum.Conns != 4 || sum.Samples == 0 {
		t.Fatalf("summary wrong: %+v", sum)
	}

	// Drain both instances, then prove the partition really split the stream
	// and that the merge is exact.
	for deadline := time.Now().Add(10 * time.Second); ; {
		got := servers[0].Collector().SamplesIngested() + servers[1].Collector().SamplesIngested()
		if got >= sum.Samples {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d samples", got, sum.Samples)
		}
		time.Sleep(time.Millisecond)
	}
	snapA, snapB := servers[0].Snapshot(), servers[1].Snapshot()
	if len(snapA) == 0 || len(snapB) == 0 {
		t.Fatalf("partition degenerate: instance flows %d / %d", len(snapA), len(snapB))
	}
	for _, agg := range snapA {
		if rlir.FleetPartition(agg.Key, 2) != 0 {
			t.Fatalf("flow %v landed on instance 0 but partitions elsewhere", agg.Key)
		}
	}
	sc, _ := rlir.ScenarioByName("baseline-tandem")
	tr, err := rlir.ExportScenarioTrace(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	merged := collector.Merge(snapA, snapB)
	if len(merged) != len(tr.Result.Fleet) {
		t.Fatalf("merged fleet has %d flows, batch engine %d", len(merged), len(tr.Result.Fleet))
	}
	for i := range merged {
		a, b := merged[i], tr.Result.Fleet[i]
		if a.Key != b.Key || a.Est != b.Est || a.True != b.True {
			t.Fatalf("flow %d diverged after fleet replay:\nmerged %+v\nbatch  %+v", i, a, b)
		}
	}
}

// TestHistoricalPartitionPinned pins the dedupe refactor: the fleet router's
// (endpoint, conn) grid with one endpoint must reproduce loadgen's historical
// inline per-connection split, int(key.FastHash() % conns), for every sample
// in a real capture. If this drifts, replayed flow tables stop matching runs
// recorded before the router existed.
func TestHistoricalPartitionPinned(t *testing.T) {
	sc, _ := rlir.ScenarioByName("baseline-tandem")
	tr, err := rlir.ExportScenarioTrace(sc.Spec, sc.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, conns := range []int{1, 2, 4, 8} {
		for _, smp := range tr.Samples {
			legacy := int(smp.Key.FastHash() % uint64(conns))
			ep, conn := rlir.FleetSinkIndex(smp.Key, 1, conns)
			if ep != 0 || conn != legacy {
				t.Fatalf("conns=%d key=%v: router grid (%d,%d), historical conn %d",
					conns, smp.Key, ep, conn, legacy)
			}
		}
	}
}

// TestConnectRetryFailurePath re-execs the test binary as a real loadgen
// process pointed at a dead address: bounded attempts must exhaust, the
// error must say so, and the process must exit 1.
func TestConnectRetryFailurePath(t *testing.T) {
	if os.Getenv("LOADGEN_SUBPROCESS") == "1" {
		os.Args = []string{"loadgen", "-scenario", "baseline-tandem",
			"-addr", "127.0.0.1:1", "-connect-attempts", "2", "-connect-timeout", "250ms"}
		main()
		return // unreachable: main exits
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestConnectRetryFailurePath$")
	cmd.Env = append(os.Environ(), "LOADGEN_SUBPROCESS=1")
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("subprocess err = %v (output %q), want non-zero exit", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "2 attempts exhausted") {
		t.Fatalf("failure output does not mention exhausted attempts:\n%s", out)
	}
}

// TestConnectRetrySurvivesLateService starts the service only after the
// first dial attempt has already failed: retry with backoff must pick it up
// within the attempt budget.
func TestConnectRetrySurvivesLateService(t *testing.T) {
	// Reserve an address, then free it so the first attempts fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	started := make(chan *rlir.MeasurementService, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		s, err := rlir.NewMeasurementService(rlir.ServiceConfig{Listen: addr, Shards: 2})
		if err != nil {
			started <- nil
			return
		}
		started <- s
	}()

	c, dialErr := rlir.DialServiceWith(rlir.ServiceDialOptions{
		Addr:           addr,
		Attempts:       20,
		Backoff:        50 * time.Millisecond,
		ConnectTimeout: time.Second,
	})
	s := <-started
	if s == nil {
		t.Skip("rebind lost the reserved port to another process")
	}
	defer s.Shutdown(t.Context())
	if dialErr != nil {
		t.Fatalf("dial never recovered after service came up: %v", dialErr)
	}
	if err := c.Hello("late-dialer"); err != nil {
		t.Fatalf("Hello: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func deadlineWait(t *testing.T, s *rlir.MeasurementService, want uint64) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if s.Collector().SamplesIngested() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("ingested %d of %d samples", s.Collector().SamplesIngested(), want)
}
