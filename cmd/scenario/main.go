// Command scenario is the CLI front-end of the declarative scenario engine:
// it lists the registry, runs named scenarios (single- or multi-seed, with
// or without their invariant checks), runs ad-hoc JSON specs, and prints
// spec templates to build new scenarios from.
//
// Usage:
//
//	scenario -list                 # registry with what each scenario stresses
//	scenario -list -json           # name array (the CI scenario-matrix input)
//	scenario -list-estimators      # registered measurement estimators
//	scenario -list-estimators -json  # name array (the CI estimator-matrix input)
//	scenario -run incast -check    # run one scenario, enforce its invariant
//	scenario -run incast -seeds 8 -parallel 4
//	scenario -run incast -estimators rli,lda   # override the comparison set
//	scenario -run telemetry-loss -telemetry-loss 0.2  # override the export loss rate
//	scenario -run trace-replay -link-trace link.json  # replay a recorded link trace file
//	scenario -run incast -engine parallel          # conservative parallel engine
//	scenario -run incast -engine parallel -partitions 2
//	scenario -describe incast      # print the spec as JSON
//	scenario -spec my.json -seed 7 # run an ad-hoc spec file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	list          bool
	listEsts      bool
	jsonOut       bool
	runName       string
	describe      string
	specFile      string
	check         bool
	seed          int64
	seeds         int
	parallel      int
	estimators    []string
	telemetryLoss float64
	linkTrace     string
	engine        string
	partitions    int
}

// parseArgs parses the command line into options, validating the
// combination. Split from run so tests can exercise the flag surface
// without executing simulations.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.BoolVar(&o.list, "list", false, "list registered scenarios")
	fs.BoolVar(&o.listEsts, "list-estimators", false, "list registered measurement estimators")
	fs.BoolVar(&o.jsonOut, "json", false, "with -list/-list-estimators: print names as a JSON array")
	fs.StringVar(&o.runName, "run", "", "run a registered scenario by name")
	fs.StringVar(&o.describe, "describe", "", "print a registered scenario's spec as JSON")
	fs.StringVar(&o.specFile, "spec", "", "run an ad-hoc spec from a JSON file")
	fs.BoolVar(&o.check, "check", false, "apply the scenario's invariant; non-zero exit on violation")
	fs.Int64Var(&o.seed, "seed", 0, "override the spec seed (0 keeps the spec's)")
	fs.IntVar(&o.seeds, "seeds", 1, "number of independent derived seeds; > 1 reports mean ± 95% CI")
	fs.IntVar(&o.parallel, "parallel", 0, "max concurrent runs for multi-seed sweeps (0 = GOMAXPROCS)")
	ests := fs.String("estimators", "", "comma-separated estimator set for -run/-spec (rli is always included; empty keeps the spec's)")
	fs.Float64Var(&o.telemetryLoss, "telemetry-loss", -1, "override (or enable) the spec's telemetry export loss rate in [0, 1) for -run/-spec (-1 keeps the spec's)")
	fs.StringVar(&o.linkTrace, "link-trace", "", "replay a recorded link trace file (JSON or CSV, see cmd/tracegen -emit link) on a core down-link for -run/-spec (replaces the spec's inline rows)")
	fs.StringVar(&o.engine, "engine", "", "event engine for -run/-spec: sequential | parallel (empty keeps the spec's)")
	fs.IntVar(&o.partitions, "partitions", 0, "LP count for -engine parallel (0 = one per pod + core partition)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	modes := 0
	for _, on := range []bool{o.list, o.listEsts, o.runName != "", o.describe != "", o.specFile != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return o, fmt.Errorf("need exactly one of -list, -list-estimators, -run, -describe, -spec")
	}
	if o.seeds < 1 {
		return o, fmt.Errorf("-seeds %d < 1", o.seeds)
	}
	if o.check && o.specFile != "" {
		return o, fmt.Errorf("-check needs a registered scenario (ad-hoc specs carry no invariant)")
	}
	if o.telemetryLoss >= 0 {
		if o.runName == "" && o.specFile == "" {
			return o, fmt.Errorf("-telemetry-loss applies to -run/-spec")
		}
		if o.telemetryLoss >= 1 {
			return o, fmt.Errorf("-telemetry-loss %v outside [0, 1)", o.telemetryLoss)
		}
	}
	if o.linkTrace != "" && o.runName == "" && o.specFile == "" {
		return o, fmt.Errorf("-link-trace applies to -run/-spec")
	}
	switch o.engine {
	case "", rlir.ScenarioEngineSequential, rlir.ScenarioEngineParallel:
	default:
		return o, fmt.Errorf("unknown -engine %q (valid: %s, %s)", o.engine,
			rlir.ScenarioEngineSequential, rlir.ScenarioEngineParallel)
	}
	if o.engine != "" && o.runName == "" && o.specFile == "" {
		return o, fmt.Errorf("-engine applies to -run/-spec")
	}
	if o.partitions != 0 && o.engine != rlir.ScenarioEngineParallel {
		return o, fmt.Errorf("-partitions needs -engine parallel")
	}
	if o.partitions < 0 {
		return o, fmt.Errorf("-partitions %d < 0", o.partitions)
	}
	if *ests != "" {
		if o.runName == "" && o.specFile == "" {
			return o, fmt.Errorf("-estimators applies to -run/-spec")
		}
		list, err := rlir.ParseEstimatorList(*ests)
		if err != nil {
			return o, err
		}
		o.estimators = list
	}
	return o, nil
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	switch {
	case o.list:
		return list(o, out)
	case o.listEsts:
		return listEstimators(o, out)
	case o.describe != "":
		sc, ok := rlir.ScenarioByName(o.describe)
		if !ok {
			return unknownScenario(o.describe)
		}
		data, err := sc.Spec.EncodeJSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	case o.runName != "":
		sc, ok := rlir.ScenarioByName(o.runName)
		if !ok {
			return unknownScenario(o.runName)
		}
		return execute(o, sc.Spec, sc.Check, out)
	default:
		data, err := os.ReadFile(o.specFile)
		if err != nil {
			return err
		}
		spec, err := rlir.DecodeScenarioSpec(data)
		if err != nil {
			return err
		}
		return execute(o, spec, nil, out)
	}
}

func list(o options, out io.Writer) error {
	if o.jsonOut {
		data, err := json.Marshal(rlir.ScenarioNames())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	for _, sc := range rlir.Scenarios() {
		fmt.Fprintf(out, "%-18s %s\n%-18s invariant: %s\n", sc.Name, sc.Stresses, "", sc.Invariant)
	}
	return nil
}

// listEstimators prints the measure registry — the CI estimator-matrix
// input in -json form.
func listEstimators(o options, out io.Writer) error {
	names := rlir.EstimatorNames()
	if o.jsonOut {
		data, err := json.Marshal(names)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	for _, n := range names {
		fmt.Fprintln(out, n)
	}
	return nil
}

// execute runs one spec (optionally checked) single- or multi-seed.
func execute(o options, spec rlir.ScenarioSpec, check func(*rlir.ScenarioResult) error, out io.Writer) error {
	if o.seed != 0 {
		spec.Seed = o.seed
	}
	if o.engine != "" {
		spec.Engine = o.engine
		spec.Partitions = o.partitions
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	if len(o.estimators) > 0 {
		spec.Deploy.Estimators = o.estimators
	}
	if o.telemetryLoss >= 0 {
		t := rlir.ScenarioTelemetrySpec{LossRate: o.telemetryLoss}
		if spec.Telemetry != nil {
			t = *spec.Telemetry
			t.LossRate = o.telemetryLoss
		}
		spec.Telemetry = &t
	}
	if o.linkTrace != "" {
		if err := applyLinkTrace(&spec, o.linkTrace); err != nil {
			return err
		}
	}
	if o.seeds > 1 {
		mr, err := rlir.RunScenarioMulti(spec, rlir.ScenarioMultiOpts{Seeds: o.seeds, Workers: o.parallel})
		if err != nil {
			return err
		}
		fmt.Fprint(out, mr.Render())
		if o.check && check != nil {
			if err := mr.CheckAll(check); err != nil {
				return fmt.Errorf("invariant violated: %w", err)
			}
			fmt.Fprintf(out, "invariant held on all %d seeds\n", o.seeds)
		}
		return nil
	}
	res, err := rlir.RunScenario(spec)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Render())
	if o.check && check != nil {
		if err := check(res); err != nil {
			return fmt.Errorf("invariant violated: %w", err)
		}
		fmt.Fprintln(out, "invariant held")
	}
	return nil
}

// applyLinkTrace loads a recorded link trace file and replays it in spec:
// the spec's own link addressing is kept when it already carries a
// LinkTrace; otherwise the trace lands on core (0,0)'s down-link to the
// last pod (the converging destination the registered scenarios monitor).
func applyLinkTrace(spec *rlir.ScenarioSpec, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-link-trace: %w", err)
	}
	lt, err := rlir.ParseLinkTrace(data)
	if err != nil {
		return fmt.Errorf("-link-trace %s: %w", path, err)
	}
	l := rlir.ScenarioLinkTraceSpec{DownPod: spec.Topology.K - 1}
	if spec.LinkTrace != nil {
		l = *spec.LinkTrace
	}
	l.Samples = make([]rlir.ScenarioLinkTraceSampleSpec, len(lt.Samples))
	for i, s := range lt.Samples {
		l.Samples[i] = rlir.ScenarioLinkTraceSampleSpec{T: s.At, Delay: s.Delay, Loss: s.Loss}
	}
	spec.LinkTrace = &l
	return spec.Validate()
}

func unknownScenario(name string) error {
	return fmt.Errorf("unknown scenario %q (registered: %s)", name, strings.Join(rlir.ScenarioNames(), ", "))
}
