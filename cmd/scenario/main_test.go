package main

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error; "" = must parse
	}{
		{"list", []string{"-list"}, ""},
		{"list json", []string{"-list", "-json"}, ""},
		{"run", []string{"-run", "incast"}, ""},
		{"run checked multi", []string{"-run", "incast", "-check", "-seeds", "4", "-parallel", "2"}, ""},
		{"describe", []string{"-describe", "incast"}, ""},
		{"spec file", []string{"-spec", "x.json", "-seed", "7"}, ""},
		{"list estimators", []string{"-list-estimators"}, ""},
		{"list estimators json", []string{"-list-estimators", "-json"}, ""},
		{"run with estimators", []string{"-run", "incast", "-estimators", "rli,lda"}, ""},
		{"spec with estimators", []string{"-spec", "x.json", "-estimators", "netflow-sample"}, ""},
		{"no mode", []string{}, "exactly one"},
		{"two modes", []string{"-list", "-run", "incast"}, "exactly one"},
		{"list and estimator list", []string{"-list", "-list-estimators"}, "exactly one"},
		{"spec with check", []string{"-spec", "x.json", "-check"}, "no invariant"},
		{"zero seeds", []string{"-run", "incast", "-seeds", "0"}, "-seeds"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"-list", "extra"}, "unexpected arguments"},
		{"estimators without run", []string{"-list", "-estimators", "lda"}, "-estimators"},
		{"unknown estimator", []string{"-run", "incast", "-estimators", "bogus"}, "bogus"},
		{"run with link trace", []string{"-run", "trace-replay", "-link-trace", "link.json"}, ""},
		{"spec with link trace", []string{"-spec", "x.json", "-link-trace", "link.csv"}, ""},
		{"link trace without run", []string{"-list", "-link-trace", "link.json"}, "-link-trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestListJSONCoversRegistry(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.Unmarshal([]byte(buf.String()), &names); err != nil {
		t.Fatalf("-list -json output is not a JSON array: %v\n%s", err, buf.String())
	}
	want := rlir.ScenarioNames()
	if len(names) != len(want) {
		t.Fatalf("-list -json has %d names, registry has %d", len(names), len(want))
	}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("-list -json[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestListEstimatorsJSONCoversRegistry pins the CI estimator-matrix input:
// -list-estimators -json emits exactly the measure registry, rli first.
func TestListEstimatorsJSONCoversRegistry(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list-estimators", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.Unmarshal([]byte(buf.String()), &names); err != nil {
		t.Fatalf("-list-estimators -json output is not a JSON array: %v\n%s", err, buf.String())
	}
	want := rlir.EstimatorNames()
	if len(names) != len(want) || names[0] != "rli" {
		t.Fatalf("-list-estimators -json = %v, want %v", names, want)
	}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("-list-estimators -json[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestUnknownEstimatorListsRegistry pins the rejection contract for the
// -estimators flag.
func TestUnknownEstimatorListsRegistry(t *testing.T) {
	_, err := parseArgs([]string{"-run", "incast", "-estimators", "nonexistent"})
	if err == nil {
		t.Fatal("unknown estimator accepted")
	}
	for _, name := range rlir.EstimatorNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list estimator %q", err, name)
		}
	}
}

func TestListShowsInvariants(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range rlir.ScenarioNames() {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("-list output missing scenario %q", name)
		}
	}
	if !strings.Contains(buf.String(), "invariant:") {
		t.Fatal("-list output missing invariant descriptions")
	}
}

func TestRunUnknownScenarioListsRegistry(t *testing.T) {
	err := run([]string{"-run", "nonexistent"}, io.Discard)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range rlir.ScenarioNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered scenario %q", err, name)
		}
	}
}

func TestDescribeRoundTrips(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-describe", "degraded-link"}, &buf); err != nil {
		t.Fatal(err)
	}
	spec, err := rlir.DecodeScenarioSpec([]byte(buf.String()))
	if err != nil {
		t.Fatalf("-describe output is not a valid spec: %v", err)
	}
	if spec.Name != "degraded-link" || len(spec.Faults) != 1 {
		t.Fatalf("described spec lost fields: %+v", spec)
	}
}

func TestSpecFileRuns(t *testing.T) {
	spec := rlir.DefaultScenarioSpec()
	spec.Name = "adhoc"
	spec.Topology.LinkBps = 200e6
	spec.Duration = 30 * time.Millisecond
	data, err := spec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "adhoc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-spec", path, "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scenario adhoc (seed 7)") {
		t.Fatalf("spec-file run did not honour the seed override:\n%s", buf.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestLinkTraceFileOverride pins the -link-trace path: a tracegen-format
// file replaces the spec's inline rows, lands on the default core
// down-link, and shows up in the run report; bad or malformed files fail
// before any simulation runs.
func TestLinkTraceFileOverride(t *testing.T) {
	lt, err := rlir.GenLinkTrace(rlir.LinkTraceConfig{
		Seed: 3, Duration: 25 * time.Millisecond, Step: 5 * time.Millisecond,
		BaseDelay: 50 * time.Microsecond, MaxExtra: 200 * time.Microsecond, MaxLoss: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ltPath := filepath.Join(dir, "link.csv")
	if err := os.WriteFile(ltPath, lt.EncodeCSV(), 0o644); err != nil {
		t.Fatal(err)
	}

	spec := rlir.DefaultScenarioSpec()
	spec.Name = "adhoc-linktrace"
	spec.Topology.LinkBps = 200e6
	spec.Duration = 30 * time.Millisecond
	data, err := spec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-spec", specPath, "-link-trace", ltPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "link trace replay on core0.0->pod3") {
		t.Fatalf("run report missing the replayed link trace:\n%s", buf.String())
	}

	// A missing file fails before any simulation.
	err = run([]string{"-spec", specPath, "-link-trace", filepath.Join(dir, "missing.json")}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-link-trace") {
		t.Fatalf("missing link-trace file: %v, want a -link-trace error", err)
	}
	// So does a malformed one, naming the file.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"version":9,"samples":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-spec", specPath, "-link-trace", badPath}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("malformed link-trace file: %v, want an error naming it", err)
	}
}

// TestMainExitsNonZeroOnUnknownScenario re-executes the test binary as the
// real main: an unknown -run name must exit non-zero with the registered
// scenarios — including the adversarial/trace-driven family — on stderr.
func TestMainExitsNonZeroOnUnknownScenario(t *testing.T) {
	if os.Getenv("SCENARIO_MAIN_PROBE") == "1" {
		os.Args = []string{"scenario", "-run", "bogus"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsNonZeroOnUnknownScenario")
	cmd.Env = append(os.Environ(), "SCENARIO_MAIN_PROBE=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("main accepted an unknown scenario; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected a non-zero exit, got %v; output:\n%s", err, out)
	}
	for _, name := range []string{"adversarial-delay", "trace-replay", "repflow"} {
		if !strings.Contains(string(out), name) {
			t.Fatalf("failure output does not list scenario %q:\n%s", name, out)
		}
	}
}

// TestMainExitsNonZeroOnBadLinkTrace pins the process contract for the new
// flag: -run adversarial-delay with a nonexistent trace file exits non-zero
// before simulating, naming the flag.
func TestMainExitsNonZeroOnBadLinkTrace(t *testing.T) {
	if os.Getenv("SCENARIO_MAIN_PROBE_LT") == "1" {
		os.Args = []string{"scenario", "-run", "adversarial-delay", "-link-trace", "/nonexistent/link.json"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsNonZeroOnBadLinkTrace")
	cmd.Env = append(os.Environ(), "SCENARIO_MAIN_PROBE_LT=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("main accepted a nonexistent -link-trace file; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected a non-zero exit, got %v; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "-link-trace") {
		t.Fatalf("failure output does not name -link-trace:\n%s", out)
	}
}

func TestSpecFileRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"topology":{"kind":"ring"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path}, io.Discard); err == nil {
		t.Fatal("invalid spec file accepted")
	}
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "missing.json")}, io.Discard); err == nil {
		t.Fatal("missing spec file accepted")
	}
}
