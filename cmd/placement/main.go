// Command placement prints the paper's §3.1 deployment-complexity table:
// how many RLI measurement instances each strategy needs on a k-ary
// fat-tree, versus full deployment.
//
// Usage:
//
//	placement [-k 4,8,16,32,48]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "placement:", err)
		os.Exit(1)
	}
}

// parseArgs parses and validates the command line: the -k list must be
// comma-separated even integers >= 4 (a fat-tree needs distinct core
// paths). Split from run so tests can exercise the flag surface without
// printing tables.
func parseArgs(args []string) ([]int, error) {
	fs := flag.NewFlagSet("placement", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	ks := fs.String("k", "4,8,16,32,48", "comma-separated fat-tree arities (even, >= 4)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	var arities []int
	for _, s := range strings.Split(*ks, ",") {
		s = strings.TrimSpace(s)
		k, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("invalid -k arity %q (valid: comma-separated even integers >= 4, e.g. 4,8,16): %v", s, err)
		}
		if k < 4 || k%2 != 0 {
			return nil, fmt.Errorf("invalid -k arity %d (valid: comma-separated even integers >= 4, e.g. 4,8,16)", k)
		}
		arities = append(arities, k)
	}
	return arities, nil
}

func run(args []string, out io.Writer) error {
	arities, err := parseArgs(args)
	if err != nil {
		return err
	}
	rows, err := rlir.PlacementTable(arities)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rlir.FormatPlacementTable(rows))
	return nil
}
