// Command placement prints the paper's §3.1 deployment-complexity table:
// how many RLI measurement instances each strategy needs on a k-ary
// fat-tree, versus full deployment.
//
// Usage:
//
//	placement [-k 4,8,16,32,48]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("placement: ")
	ks := flag.String("k", "4,8,16,32,48", "comma-separated fat-tree arities (even)")
	flag.Parse()

	var arities []int
	for _, s := range strings.Split(*ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("invalid arity %q: %v", s, err)
		}
		arities = append(arities, k)
	}
	rows, err := rlir.PlacementTable(arities)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rlir.FormatPlacementTable(rows))
}
