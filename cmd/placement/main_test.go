package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestParseArgsValidation pins the -k validation contract: bad arities are
// rejected with an error stating what is valid.
func TestParseArgsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error; "" = must parse
	}{
		{"defaults", nil, ""},
		{"explicit", []string{"-k", "4, 8,16"}, ""},
		{"odd arity", []string{"-k", "5"}, "even integers >= 4"},
		{"too small", []string{"-k", "2"}, "even integers >= 4"},
		{"not a number", []string{"-k", "four"}, `"four"`},
		{"empty entry", []string{"-k", "4,,8"}, "even integers >= 4"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				if len(got) == 0 {
					t.Fatal("no arities parsed")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunPrintsTable exercises the real table path through the same
// dispatch an operator hits.
func TestRunPrintsTable(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-k", "4,8"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k") || len(buf.String()) == 0 {
		t.Fatalf("no table rendered:\n%s", buf.String())
	}
}

// TestMainExitsNonZeroOnBadArity re-executes the test binary as the real
// main: an invalid -k must exit non-zero with the constraint on stderr.
func TestMainExitsNonZeroOnBadArity(t *testing.T) {
	if os.Getenv("PLACEMENT_MAIN_PROBE") == "1" {
		os.Args = []string{"placement", "-k", "3"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsNonZeroOnBadArity")
	cmd.Env = append(os.Environ(), "PLACEMENT_MAIN_PROBE=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("main accepted arity 3; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected a non-zero exit, got %v; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "even integers >= 4") {
		t.Fatalf("failure output does not state the arity constraint:\n%s", out)
	}
}
