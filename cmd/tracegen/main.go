// Command tracegen generates the synthetic workloads that stand in for the
// paper's CAIDA OC-192 traces, writing them in the repository's binary
// trace format or as a nanosecond pcap, and summarizing whatever it wrote.
//
// Independent runs (statistically uncorrelated traces reproducible from
// one base seed) are derived through trace/seed.go's SplitMix64 stream
// derivation — never naive seed+i arithmetic, which hands neighbouring
// runs nearly identical generator states.
//
// Usage:
//
//	tracegen -o regular.trc -duration 2s -rate 220e6
//	tracegen -o cross.pcap -format pcap -seed 2 -src 172.16.0.0/16
//	tracegen -o sweep.trc -runs 8          # sweep.run0.trc ... sweep.run7.trc
//	tracegen -o run3.trc -run 3            # just stream 3 of the same sweep
//	tracegen -summarize regular.trc
//
// It also emits recorded-link stand-ins — per-link delay/loss time series
// the scenario engine replays via -link-trace (trace.GenLinkTrace):
//
//	tracegen -emit link -o link.json -duration 200ms -link-step 25ms
//	tracegen -emit link -o link.csv -link-format csv -link-max-loss 0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/pcapio"
	"github.com/netmeasure/rlir/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	out       string
	format    string
	duration  time.Duration
	bps       float64
	seed      int64
	src, dst  string
	alpha     float64
	maxFlow   int
	runs      int
	runIdx    int
	summarize string

	emit          string
	linkFormat    string
	linkStep      time.Duration
	linkBaseDelay time.Duration
	linkMaxExtra  time.Duration
	linkMaxLoss   float64
}

// parseArgs parses and validates the command line. Split from run so tests
// can exercise the flag surface without generating traces.
func parseArgs(args []string) (options, error) {
	var o options
	var rate string
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&o.out, "o", "", "output file (empty: print summary only)")
	fs.StringVar(&o.format, "format", "binary", "output format: binary | pcap")
	fs.DurationVar(&o.duration, "duration", 2*time.Second, "trace duration")
	fs.StringVar(&rate, "rate", "220e6", "target offered load, bits/second")
	fs.Int64Var(&o.seed, "seed", 1, "deterministic base seed")
	fs.StringVar(&o.src, "src", "10.1.0.0/16", "source address pool")
	fs.StringVar(&o.dst, "dst", "10.200.0.0/16", "destination address pool")
	fs.Float64Var(&o.alpha, "alpha", 1.15, "flow length tail index")
	fs.IntVar(&o.maxFlow, "maxflow", 20000, "max packets per flow")
	fs.IntVar(&o.runs, "runs", 1, "independent runs to generate (seeds derived via SplitMix64 streams)")
	fs.IntVar(&o.runIdx, "run", -1, "generate only this derived stream index of the base seed")
	fs.StringVar(&o.summarize, "summarize", "", "summarize an existing trace file and exit")
	fs.StringVar(&o.emit, "emit", "packet", "what to generate: packet | link")
	fs.StringVar(&o.linkFormat, "link-format", "json", "link trace encoding for -emit link: json | csv")
	fs.DurationVar(&o.linkStep, "link-step", 10*time.Millisecond, "row spacing for -emit link")
	fs.DurationVar(&o.linkBaseDelay, "link-base-delay", 20*time.Microsecond, "delay floor for -emit link rows")
	fs.DurationVar(&o.linkMaxExtra, "link-max-extra", 400*time.Microsecond, "random delay excursion bound for -emit link")
	fs.Float64Var(&o.linkMaxLoss, "link-max-loss", 0.02, "loss probability bound for -emit link rows")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if o.format != "binary" && o.format != "pcap" {
		return o, fmt.Errorf("unknown -format %q (valid: binary, pcap)", o.format)
	}
	if o.emit != "packet" && o.emit != "link" {
		return o, fmt.Errorf("unknown -emit %q (valid: packet, link)", o.emit)
	}
	if o.linkFormat != "json" && o.linkFormat != "csv" {
		return o, fmt.Errorf("unknown -link-format %q (valid: json, csv)", o.linkFormat)
	}
	if o.emit == "link" && (o.runs > 1 || o.runIdx >= 0) {
		return o, fmt.Errorf("-emit link generates one deterministic time series; -runs/-run apply to packet traces")
	}
	if o.runs < 1 {
		return o, fmt.Errorf("-runs %d < 1", o.runs)
	}
	if o.runIdx < -1 {
		return o, fmt.Errorf("-run %d is negative (valid: stream indices >= 0)", o.runIdx)
	}
	if o.runs > 1 && o.runIdx >= 0 {
		return o, fmt.Errorf("-runs and -run are exclusive: a batch derives every stream, -run selects one")
	}
	if o.runs > 1 && o.out == "" {
		return o, fmt.Errorf("-runs %d needs -o to name the per-run files", o.runs)
	}
	bps, err := strconv.ParseFloat(rate, 64)
	if err != nil {
		return o, fmt.Errorf("invalid -rate: %v", err)
	}
	o.bps = bps
	return o, nil
}

// config builds the generator config for one derived stream. Stream index
// < 0 uses the base seed directly (a single, stand-alone trace); >= 0
// routes through trace.DeriveSeed so separate runs are independent yet
// reproducible.
func (o options) config(stream int) (trace.Config, error) {
	cfg := trace.DefaultConfig()
	cfg.Seed = o.seed
	if stream >= 0 {
		cfg.Seed = trace.DeriveSeed(o.seed, uint64(stream))
	}
	cfg.Duration = o.duration
	cfg.TargetBps = o.bps
	src, err := packet.ParsePrefix(o.src)
	if err != nil {
		return cfg, fmt.Errorf("invalid -src: %v", err)
	}
	dst, err := packet.ParsePrefix(o.dst)
	if err != nil {
		return cfg, fmt.Errorf("invalid -dst: %v", err)
	}
	cfg.SrcPrefix = src
	cfg.DstPrefix = dst
	cfg.FlowLen.Alpha = o.alpha
	cfg.FlowLen.Max = o.maxFlow
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// runFile names run i of a batch: base.trc -> base.run0.trc.
func runFile(out string, i int) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.run%d%s", strings.TrimSuffix(out, ext), i, ext)
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}

	if o.summarize != "" {
		f, err := os.Open(o.summarize)
		if err != nil {
			return err
		}
		defer f.Close()
		r := trace.NewReader(f)
		fmt.Fprintln(out, trace.Summarize(r))
		return r.Err()
	}

	if o.emit == "link" {
		return emitLink(o, out)
	}

	if o.runs > 1 {
		for i := 0; i < o.runs; i++ {
			cfg, err := o.config(i)
			if err != nil {
				return err
			}
			if err := writeTrace(cfg, o.format, runFile(o.out, i), out); err != nil {
				return err
			}
		}
		return nil
	}

	cfg, err := o.config(o.runIdx)
	if err != nil {
		return err
	}
	if o.out == "" {
		fmt.Fprintln(out, trace.Summarize(trace.NewGenerator(cfg)))
		return nil
	}
	return writeTrace(cfg, o.format, o.out, out)
}

// emitLink generates one deterministic link trace (delay/loss time series)
// and writes it in the requested encoding — to -o, or to stdout without -o.
func emitLink(o options, out io.Writer) error {
	lt, err := trace.GenLinkTrace(trace.LinkTraceConfig{
		Seed:      o.seed,
		Duration:  o.duration,
		Step:      o.linkStep,
		BaseDelay: o.linkBaseDelay,
		MaxExtra:  o.linkMaxExtra,
		MaxLoss:   o.linkMaxLoss,
	})
	if err != nil {
		return err
	}
	var data []byte
	if o.linkFormat == "json" {
		if data, err = lt.EncodeJSON(); err != nil {
			return err
		}
		data = append(data, '\n')
	} else {
		data = lt.EncodeCSV()
	}
	if o.out == "" {
		_, err := out.Write(data)
		return err
	}
	if err := os.WriteFile(o.out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d link samples to %s\n", len(lt.Samples), o.out)
	return nil
}

// writeTrace generates one trace into path in the requested format.
func writeTrace(cfg trace.Config, format, path string, out io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	gen := trace.NewGenerator(cfg)
	var count uint64
	switch format {
	case "binary":
		w := trace.NewWriter(f)
		for {
			rec, ok := gen.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		count = w.Count()
	case "pcap":
		w := pcapio.NewWriter(f)
		for {
			rec, ok := gen.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		count = w.Count()
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d records to %s\n", count, path)
	return nil
}
