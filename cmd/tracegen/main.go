// Command tracegen generates the synthetic workloads that stand in for the
// paper's CAIDA OC-192 traces, writing them in the repository's binary
// trace format or as a nanosecond pcap, and summarizing whatever it wrote.
//
// Usage:
//
//	tracegen -o regular.trc -duration 2s -rate 220e6
//	tracegen -o cross.pcap -format pcap -seed 2 -src 172.16.0.0/16
//	tracegen -summarize regular.trc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"github.com/netmeasure/rlir/internal/packet"
	"github.com/netmeasure/rlir/internal/pcapio"
	"github.com/netmeasure/rlir/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		out       = flag.String("o", "", "output file (empty: print summary only)")
		format    = flag.String("format", "binary", "output format: binary | pcap")
		duration  = flag.Duration("duration", 2*time.Second, "trace duration")
		rate      = flag.String("rate", "220e6", "target offered load, bits/second")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		src       = flag.String("src", "10.1.0.0/16", "source address pool")
		dst       = flag.String("dst", "10.200.0.0/16", "destination address pool")
		alpha     = flag.Float64("alpha", 1.15, "flow length tail index")
		maxFlow   = flag.Int("maxflow", 20000, "max packets per flow")
		summarize = flag.String("summarize", "", "summarize an existing trace file and exit")
	)
	flag.Parse()

	if *summarize != "" {
		f, err := os.Open(*summarize)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r := trace.NewReader(f)
		fmt.Println(trace.Summarize(r))
		if err := r.Err(); err != nil {
			log.Fatal(err)
		}
		return
	}

	bps, err := strconv.ParseFloat(*rate, 64)
	if err != nil {
		log.Fatalf("invalid -rate: %v", err)
	}
	cfg := trace.DefaultConfig()
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.TargetBps = bps
	cfg.SrcPrefix = packet.MustParsePrefix(*src)
	cfg.DstPrefix = packet.MustParsePrefix(*dst)
	cfg.FlowLen.Alpha = *alpha
	cfg.FlowLen.Max = *maxFlow
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	if *out == "" {
		fmt.Println(trace.Summarize(trace.NewGenerator(cfg)))
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	gen := trace.NewGenerator(cfg)
	switch *format {
	case "binary":
		w := trace.NewWriter(f)
		for {
			rec, ok := gen.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", w.Count(), *out)
	case "pcap":
		w := pcapio.NewWriter(f)
		for {
			rec, ok := gen.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d packets to %s\n", w.Count(), *out)
	default:
		log.Fatalf("unknown format %q (binary | pcap)", *format)
	}
}
