package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"github.com/netmeasure/rlir/internal/trace"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDerivedRunsDeterministic pins the independent-run contract: a batch
// run's stream i is byte-identical to generating stream i alone (both
// route through trace.DeriveSeed), regenerating is reproducible, and the
// derivation is NOT naive seed+i arithmetic.
func TestDerivedRunsDeterministic(t *testing.T) {
	dir := t.TempDir()
	batch := filepath.Join(dir, "batch.trc")
	args := []string{"-o", batch, "-runs", "3", "-duration", "20ms", "-rate", "50e6"}
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Reproducible: the same batch again is byte-identical.
	batch2 := filepath.Join(dir, "again.trc")
	if err := run([]string{"-o", batch2, "-runs", "3", "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a := readFile(t, runFile(batch, i))
		b := readFile(t, runFile(batch2, i))
		if !bytes.Equal(a, b) {
			t.Fatalf("batch regeneration changed run %d", i)
		}
	}

	// Positional: -run i alone equals run i of the batch.
	single := filepath.Join(dir, "single.trc")
	if err := run([]string{"-o", single, "-run", "1", "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, single), readFile(t, runFile(batch, 1))) {
		t.Fatal("-run 1 diverges from run 1 of a -runs 3 batch")
	}

	// Independent: runs differ from each other...
	if bytes.Equal(readFile(t, runFile(batch, 0)), readFile(t, runFile(batch, 1))) {
		t.Fatal("derived runs 0 and 1 are identical")
	}
	// ...and stream 1 is NOT the naive seed+1 trace.
	naive := filepath.Join(dir, "naive.trc")
	if err := run([]string{"-o", naive, "-seed", "2", "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(readFile(t, naive), readFile(t, runFile(batch, 1))) {
		t.Fatal("stream 1 equals the seed+1 trace; derivation is not routed through SplitMix64")
	}

	// The derived seed is exactly trace.DeriveSeed: regenerating stream 2
	// by passing its derived seed directly matches.
	derived := filepath.Join(dir, "derived.trc")
	seedArg := []string{"-o", derived, "-duration", "20ms", "-rate", "50e6",
		"-seed", strconv.FormatInt(trace.DeriveSeed(1, 2), 10)}
	if err := run(seedArg, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, derived), readFile(t, runFile(batch, 2))) {
		t.Fatal("stream 2 does not use trace.DeriveSeed(base, 2)")
	}
}

// TestSummarizeRoundTrip pins the write->summarize path.
func TestSummarizeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trc")
	if err := run([]string{"-o", out, "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-summarize", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkts") && len(buf.String()) == 0 {
		t.Fatalf("empty summary:\n%s", buf.String())
	}
}

// TestEmitLinkRoundTrips pins the link emit mode: both encodings of the
// same seed parse back to the identical trace, and regeneration is
// byte-reproducible.
func TestEmitLinkRoundTrips(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "link.json")
	csvPath := filepath.Join(dir, "link.csv")
	common := []string{"-emit", "link", "-seed", "9", "-duration", "100ms", "-link-step", "20ms"}
	if err := run(append([]string{"-o", jsonPath}, common...), io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-o", csvPath, "-link-format", "csv"}, common...), io.Discard); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := trace.ParseLinkTrace(readFile(t, jsonPath))
	if err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	fromCSV, err := trace.ParseLinkTrace(readFile(t, csvPath))
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if !reflect.DeepEqual(fromJSON, fromCSV) {
		t.Fatal("JSON and CSV encodings of the same seed diverge")
	}
	if len(fromJSON.Samples) != 6 {
		t.Fatalf("100ms at 20ms step yields %d rows, want 6", len(fromJSON.Samples))
	}
	again := filepath.Join(dir, "again.json")
	if err := run(append([]string{"-o", again}, common...), io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, jsonPath), readFile(t, again)) {
		t.Fatal("link emit is not byte-reproducible")
	}
	// Without -o the trace streams to stdout in the requested encoding.
	var buf strings.Builder
	if err := run(append([]string{"-link-format", "csv"}, common...), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t_ns,delay_ns,loss\n") {
		t.Fatalf("stdout CSV missing header:\n%s", buf.String())
	}
}

// TestMainExitsNonZeroOnBadEmit re-executes the test binary as the real
// main: an unknown -emit mode must exit non-zero listing the valid modes.
func TestMainExitsNonZeroOnBadEmit(t *testing.T) {
	if os.Getenv("TRACEGEN_MAIN_PROBE") == "1" {
		os.Args = []string{"tracegen", "-emit", "frames"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsNonZeroOnBadEmit")
	cmd.Env = append(os.Environ(), "TRACEGEN_MAIN_PROBE=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("main accepted an unknown -emit; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected a non-zero exit, got %v; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "valid: packet, link") {
		t.Fatalf("failure output does not list the valid emit modes:\n%s", out)
	}
}

// TestParseArgsValidation pins the flag surface.
func TestParseArgsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"defaults", nil, ""},
		{"batch", []string{"-o", "x.trc", "-runs", "4"}, ""},
		{"bad format", []string{"-format", "csv"}, `-format "csv"`},
		{"zero runs", []string{"-runs", "0"}, "-runs"},
		{"runs and run", []string{"-o", "x.trc", "-runs", "2", "-run", "1"}, "exclusive"},
		{"negative run", []string{"-o", "x.trc", "-run", "-3"}, "stream indices >= 0"},
		{"batch without output", []string{"-runs", "2"}, "needs -o"},
		{"bad rate", []string{"-rate", "fast"}, "-rate"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"extra"}, "unexpected arguments"},
		{"emit link", []string{"-emit", "link", "-o", "x.json"}, ""},
		{"emit link csv", []string{"-emit", "link", "-link-format", "csv"}, ""},
		{"bad emit", []string{"-emit", "frames"}, "valid: packet, link"},
		{"bad link format", []string{"-emit", "link", "-link-format", "yaml"}, "valid: json, csv"},
		{"link with runs", []string{"-emit", "link", "-o", "x.json", "-runs", "2"}, "-runs"},
		{"link with run index", []string{"-emit", "link", "-o", "x.json", "-run", "1"}, "-run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}
