package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/netmeasure/rlir/internal/trace"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDerivedRunsDeterministic pins the independent-run contract: a batch
// run's stream i is byte-identical to generating stream i alone (both
// route through trace.DeriveSeed), regenerating is reproducible, and the
// derivation is NOT naive seed+i arithmetic.
func TestDerivedRunsDeterministic(t *testing.T) {
	dir := t.TempDir()
	batch := filepath.Join(dir, "batch.trc")
	args := []string{"-o", batch, "-runs", "3", "-duration", "20ms", "-rate", "50e6"}
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Reproducible: the same batch again is byte-identical.
	batch2 := filepath.Join(dir, "again.trc")
	if err := run([]string{"-o", batch2, "-runs", "3", "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a := readFile(t, runFile(batch, i))
		b := readFile(t, runFile(batch2, i))
		if !bytes.Equal(a, b) {
			t.Fatalf("batch regeneration changed run %d", i)
		}
	}

	// Positional: -run i alone equals run i of the batch.
	single := filepath.Join(dir, "single.trc")
	if err := run([]string{"-o", single, "-run", "1", "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, single), readFile(t, runFile(batch, 1))) {
		t.Fatal("-run 1 diverges from run 1 of a -runs 3 batch")
	}

	// Independent: runs differ from each other...
	if bytes.Equal(readFile(t, runFile(batch, 0)), readFile(t, runFile(batch, 1))) {
		t.Fatal("derived runs 0 and 1 are identical")
	}
	// ...and stream 1 is NOT the naive seed+1 trace.
	naive := filepath.Join(dir, "naive.trc")
	if err := run([]string{"-o", naive, "-seed", "2", "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(readFile(t, naive), readFile(t, runFile(batch, 1))) {
		t.Fatal("stream 1 equals the seed+1 trace; derivation is not routed through SplitMix64")
	}

	// The derived seed is exactly trace.DeriveSeed: regenerating stream 2
	// by passing its derived seed directly matches.
	derived := filepath.Join(dir, "derived.trc")
	seedArg := []string{"-o", derived, "-duration", "20ms", "-rate", "50e6",
		"-seed", strconv.FormatInt(trace.DeriveSeed(1, 2), 10)}
	if err := run(seedArg, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, derived), readFile(t, runFile(batch, 2))) {
		t.Fatal("stream 2 does not use trace.DeriveSeed(base, 2)")
	}
}

// TestSummarizeRoundTrip pins the write->summarize path.
func TestSummarizeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trc")
	if err := run([]string{"-o", out, "-duration", "20ms", "-rate", "50e6"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-summarize", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkts") && len(buf.String()) == 0 {
		t.Fatalf("empty summary:\n%s", buf.String())
	}
}

// TestParseArgsValidation pins the flag surface.
func TestParseArgsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"defaults", nil, ""},
		{"batch", []string{"-o", "x.trc", "-runs", "4"}, ""},
		{"bad format", []string{"-format", "csv"}, `-format "csv"`},
		{"zero runs", []string{"-runs", "0"}, "-runs"},
		{"runs and run", []string{"-o", "x.trc", "-runs", "2", "-run", "1"}, "exclusive"},
		{"negative run", []string{"-o", "x.trc", "-run", "-3"}, "stream indices >= 0"},
		{"batch without output", []string{"-runs", "2"}, "needs -o"},
		{"bad rate", []string{"-rate", "fast"}, "-rate"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}
