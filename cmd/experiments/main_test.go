package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	rlir "github.com/netmeasure/rlir"
)

// TestUnknownTargetRejected pins the dispatch contract: an unknown -fig
// value must produce an error that names every valid target, in both the
// single- and multi-seed paths.
func TestUnknownTargetRejected(t *testing.T) {
	sc := rlir.SmallScale()
	for _, dispatch := range []func(string) error{
		func(tg string) error { return run(tg, sc) },
		func(tg string) error { return runMulti(tg, sc, rlir.MultiOpts{Seeds: 2}) },
	} {
		err := dispatch("fig99")
		if err == nil {
			t.Fatal("unknown target accepted")
		}
		if !strings.Contains(err.Error(), `"fig99"`) {
			t.Fatalf("error %q does not echo the bad target", err)
		}
		for _, valid := range validTargets {
			if !strings.Contains(err.Error(), valid) {
				t.Fatalf("error %q does not list valid target %q", err, valid)
			}
		}
	}
}

// TestUnknownScenarioRejected pins the -scenario target's rejection path.
func TestUnknownScenarioRejected(t *testing.T) {
	err := runScenario("nonexistent", 0, false, 1, 0, nil)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range rlir.ScenarioNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list scenario %q", err, name)
		}
	}
}

// TestParseEstimatorList pins the shared -estimators validation: unknown
// names are rejected listing the registry; known names pass through in
// order.
func TestParseEstimatorList(t *testing.T) {
	got, err := rlir.ParseEstimatorList("rli, lda")
	if err != nil || len(got) != 2 || got[0] != "rli" || got[1] != "lda" {
		t.Fatalf("ParseEstimatorList(rli, lda) = %v, %v", got, err)
	}
	if _, err := rlir.ParseEstimatorList("bogus"); err == nil {
		t.Fatal("unknown estimator accepted")
	} else {
		for _, name := range rlir.EstimatorNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q does not list estimator %q", err, name)
			}
		}
	}
}

// TestPlacementTargetRuns exercises one cheap real target end to end
// through the same dispatch an operator hits.
func TestPlacementTargetRuns(t *testing.T) {
	if err := run("placement", rlir.SmallScale()); err != nil {
		t.Fatal(err)
	}
}

// TestMainExitsNonZeroOnUnknownFig re-executes the test binary as the real
// main and asserts the process-level contract: unknown -fig means a
// non-zero exit with the valid targets on stderr.
func TestMainExitsNonZeroOnUnknownFig(t *testing.T) {
	if os.Getenv("EXPERIMENTS_MAIN_PROBE") == "1" {
		os.Args = []string{"experiments", "-fig", "fig99"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsNonZeroOnUnknownFig")
	cmd.Env = append(os.Environ(), "EXPERIMENTS_MAIN_PROBE=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("main accepted an unknown -fig; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected a non-zero exit, got %v; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "valid:") || !strings.Contains(string(out), "placement") {
		t.Fatalf("failure output does not list valid targets:\n%s", out)
	}
}
