// Command experiments regenerates every table and figure of the paper's
// evaluation (and the repository's ablations) and prints them as text
// tables and CDF renderings.
//
// With -seeds N (N > 1) it instead runs each experiment at N independent
// SplitMix64-derived seeds, fanned across -parallel workers, and reports
// headline metrics as mean ± 95% CI — the statistically rigorous form of
// the same figures.
//
// Usage:
//
//	experiments -all
//	experiments -fig 4a -scale default
//	experiments -fig 5
//	experiments -fig A1
//	experiments -all -seeds 8 -parallel 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig      = flag.String("fig", "", "which result to regenerate: 4a 4b 4c 5 placement scalars A1 A2 A3 B1 L1")
		all      = flag.Bool("all", false, "regenerate everything")
		scale    = flag.String("scale", "default", "small | default | full")
		seed     = flag.Int64("seed", 1, "deterministic base seed")
		seeds    = flag.Int("seeds", 1, "number of independent seeds; > 1 reports mean ± 95% CI")
		parallel = flag.Int("parallel", 0, "max concurrent runs for multi-seed sweeps (0 = GOMAXPROCS)")
		csvDir   = flag.String("csv", "", "also write figure series as CSV files into this directory (single-seed only)")
	)
	flag.Parse()

	sc := pickScale(*scale)
	sc.Seed = *seed
	csvOut = *csvDir
	opts := rlir.MultiOpts{Seeds: *seeds, Workers: *parallel}

	targets := []string{}
	if *all {
		targets = []string{"placement", "scalars", "4a", "4b", "4c", "5", "A1", "A2", "A3", "B1", "L1"}
	} else if *fig != "" {
		targets = strings.Split(*fig, ",")
	} else {
		flag.Usage()
		log.Fatal("need -fig or -all")
	}

	for _, t := range targets {
		start := time.Now()
		if *seeds > 1 {
			runMulti(strings.TrimSpace(t), sc, opts)
		} else {
			run(strings.TrimSpace(t), sc)
		}
		fmt.Printf("[%s done in %v]\n\n", t, time.Since(start).Round(time.Millisecond))
	}
}

func pickScale(name string) rlir.Scale {
	switch name {
	case "small":
		return rlir.SmallScale()
	case "default":
		return rlir.DefaultScale()
	case "full":
		return rlir.FullScale()
	default:
		log.Fatalf("unknown scale %q", name)
		panic("unreachable")
	}
}

// csvOut, when non-empty, receives figure series as CSV files.
var csvOut string

func emitFigure(f rlir.Figure) {
	fmt.Print(f.Render())
	if csvOut == "" {
		return
	}
	files, err := f.WriteCSV(csvOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d CSV series to %s\n", len(files), csvOut)
}

func run(target string, sc rlir.Scale) {
	switch target {
	case "4a":
		emitFigure(rlir.Fig4a(sc))
	case "4b":
		emitFigure(rlir.Fig4b(sc))
	case "4c":
		emitFigure(rlir.Fig4c(sc))
	case "5":
		r := rlir.Fig5(sc, nil)
		fmt.Print(r.Render())
		if csvOut != "" {
			if _, err := r.WriteCSV(csvOut); err != nil {
				log.Fatal(err)
			}
		}
	case "placement":
		runPlacement()
	case "scalars":
		fmt.Print(rlir.RunScalars(sc).Render())
	case "A1":
		cfg := rlir.DefaultFatTreeConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.RenderAblationDemux(rlir.AblationDemux(cfg)))
	case "A2":
		fmt.Print(rlir.RenderEstimators(rlir.AblationEstimators(sc, 0.8)))
	case "A3":
		fmt.Print(rlir.RenderClocks(rlir.AblationClocks(sc, 0.8)))
	case "B1":
		fmt.Print(rlir.RunBaselines(sc, 0.85).Render())
	case "L1":
		cfg := rlir.DefaultLocalizationConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.RunLocalization(cfg).Render())
	default:
		log.Fatalf("unknown target %q", target)
	}
}

// runMulti is the multi-seed dispatch: the same targets, re-recorded as
// mean ± CI over the derived seeds.
func runMulti(target string, sc rlir.Scale, opts rlir.MultiOpts) {
	switch target {
	case "4a":
		fmt.Print(rlir.Fig4aMulti(sc, opts).Render())
	case "4b":
		fmt.Print(rlir.Fig4bMulti(sc, opts).Render())
	case "4c":
		fmt.Print(rlir.Fig4cMulti(sc, opts).Render())
	case "5":
		fmt.Println("fig5 runs single-seed (a within-run differential measurement); rerun without -seeds")
		run(target, sc)
	case "placement":
		runPlacement() // exact combinatorics: seed-independent
	case "scalars":
		fmt.Print(rlir.MultiScalars(sc, opts).Render())
	case "A1":
		cfg := rlir.DefaultFatTreeConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.RenderDemuxCI(rlir.MultiDemux(cfg, opts), opts.Seeds))
	case "A2":
		fmt.Print(rlir.RenderEstimatorsCI(rlir.MultiEstimators(sc, 0.8, opts), opts.Seeds))
	case "A3":
		fmt.Print(rlir.RenderClocksCI(rlir.MultiClocks(sc, 0.8, opts), opts.Seeds))
	case "B1":
		fmt.Print(rlir.MultiBaselines(sc, 0.85, opts).Render())
	case "L1":
		cfg := rlir.DefaultLocalizationConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.MultiLocalization(cfg, opts).Render())
	default:
		log.Fatalf("unknown target %q", target)
	}
}

func runPlacement() {
	rows, err := rlir.PlacementTable([]int{4, 8, 16, 32, 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== §3.1: deployment complexity (measurement instances) ==")
	fmt.Print(rlir.FormatPlacementTable(rows))
}
