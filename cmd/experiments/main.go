// Command experiments regenerates every table and figure of the paper's
// evaluation (and the repository's ablations) and prints them as text
// tables and CDF renderings.
//
// Usage:
//
//	experiments -all
//	experiments -fig 4a -scale default
//	experiments -fig 5
//	experiments -fig A1
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig    = flag.String("fig", "", "which result to regenerate: 4a 4b 4c 5 placement scalars A1 A2 A3 B1")
		all    = flag.Bool("all", false, "regenerate everything")
		scale  = flag.String("scale", "default", "small | default | full")
		seed   = flag.Int64("seed", 1, "deterministic seed")
		csvDir = flag.String("csv", "", "also write figure series as CSV files into this directory")
	)
	flag.Parse()

	sc := pickScale(*scale)
	sc.Seed = seed64(*seed)
	csvOut = *csvDir

	targets := []string{}
	if *all {
		targets = []string{"placement", "scalars", "4a", "4b", "4c", "5", "A1", "A2", "A3", "B1"}
	} else if *fig != "" {
		targets = strings.Split(*fig, ",")
	} else {
		flag.Usage()
		log.Fatal("need -fig or -all")
	}

	for _, t := range targets {
		start := time.Now()
		run(strings.TrimSpace(t), sc)
		fmt.Printf("[%s done in %v]\n\n", t, time.Since(start).Round(time.Millisecond))
	}
}

func seed64(s int64) int64 { return s }

func pickScale(name string) rlir.Scale {
	switch name {
	case "small":
		return rlir.SmallScale()
	case "default":
		return rlir.DefaultScale()
	case "full":
		return rlir.FullScale()
	default:
		log.Fatalf("unknown scale %q", name)
		panic("unreachable")
	}
}

// csvOut, when non-empty, receives figure series as CSV files.
var csvOut string

func emitFigure(f rlir.Figure) {
	fmt.Print(f.Render())
	if csvOut == "" {
		return
	}
	files, err := f.WriteCSV(csvOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d CSV series to %s\n", len(files), csvOut)
}

func run(target string, sc rlir.Scale) {
	switch target {
	case "4a":
		emitFigure(rlir.Fig4a(sc))
	case "4b":
		emitFigure(rlir.Fig4b(sc))
	case "4c":
		emitFigure(rlir.Fig4c(sc))
	case "5":
		r := rlir.Fig5(sc, nil)
		fmt.Print(r.Render())
		if csvOut != "" {
			if _, err := r.WriteCSV(csvOut); err != nil {
				log.Fatal(err)
			}
		}
	case "placement":
		rows, err := rlir.PlacementTable([]int{4, 8, 16, 32, 48})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== §3.1: deployment complexity (measurement instances) ==")
		fmt.Print(rlir.FormatPlacementTable(rows))
	case "scalars":
		fmt.Print(rlir.RunScalars(sc).Render())
	case "A1":
		cfg := rlir.DefaultFatTreeConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.RenderAblationDemux(rlir.AblationDemux(cfg)))
	case "A2":
		fmt.Print(rlir.RenderEstimators(rlir.AblationEstimators(sc, 0.8)))
	case "A3":
		fmt.Print(rlir.RenderClocks(rlir.AblationClocks(sc, 0.8)))
	case "B1":
		fmt.Print(rlir.RunBaselines(sc, 0.85).Render())
	default:
		log.Fatalf("unknown target %q", target)
	}
}
