// Command experiments regenerates every table and figure of the paper's
// evaluation (and the repository's ablations) and prints them as text
// tables and CDF renderings.
//
// With -seeds N (N > 1) it instead runs each experiment at N independent
// SplitMix64-derived seeds, fanned across -parallel workers, and reports
// headline metrics as mean ± 95% CI — the statistically rigorous form of
// the same figures.
//
// Usage:
//
//	experiments -all
//	experiments -fig 4a -scale default
//	experiments -fig 5
//	experiments -fig A1
//	experiments -all -seeds 8 -parallel 4
//	experiments -scenario incast -seeds 8
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	rlir "github.com/netmeasure/rlir"
)

// validTargets is every -fig value, in -all order. An unknown -fig exits
// non-zero listing these.
var validTargets = []string{"placement", "scalars", "4a", "4b", "4c", "5", "A1", "A2", "A3", "B1", "L1"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig      = flag.String("fig", "", "which result to regenerate: "+strings.Join(validTargets, " "))
		all      = flag.Bool("all", false, "regenerate everything")
		scenName = flag.String("scenario", "", "run a registered scenario from the scenario engine (see cmd/scenario -list)")
		ests     = flag.String("estimators", "", "with -scenario: comma-separated estimator set (rli always included)")
		scale    = flag.String("scale", "default", "small | default | full")
		seed     = flag.Int64("seed", 1, "deterministic base seed")
		seeds    = flag.Int("seeds", 1, "number of independent seeds; > 1 reports mean ± 95% CI")
		parallel = flag.Int("parallel", 0, "max concurrent runs for multi-seed sweeps (0 = GOMAXPROCS)")
		csvDir   = flag.String("csv", "", "also write figure series as CSV files into this directory (single-seed only)")
	)
	flag.Parse()

	sc := pickScale(*scale)
	sc.Seed = *seed
	csvOut = *csvDir
	opts := rlir.MultiOpts{Seeds: *seeds, Workers: *parallel}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["csv"] && *seeds > 1 {
		// The multi-seed harnesses render CI tables, not CDF series; fail
		// loudly rather than silently write nothing.
		log.Fatal("-csv applies to single-seed figure runs only; drop -seeds or -csv")
	}

	if *scenName == "" && *ests != "" {
		log.Fatal("-estimators applies to -scenario runs only")
	}
	if *scenName != "" {
		// Scenarios are sized by their registered spec (or a cmd/scenario
		// -spec file), not by the figure harness's scale; fail loudly
		// rather than silently run something other than what was asked.
		if set["scale"] || set["csv"] {
			log.Fatal("-scale/-csv do not apply to -scenario; size scenarios via their spec (see cmd/scenario)")
		}
		estimators, err := rlir.ParseEstimatorList(*ests)
		if err != nil {
			log.Fatal(err)
		}
		if err := runScenario(*scenName, *seed, set["seed"], *seeds, *parallel, estimators); err != nil {
			log.Fatal(err)
		}
		return
	}

	targets := []string{}
	if *all {
		targets = validTargets
	} else if *fig != "" {
		targets = strings.Split(*fig, ",")
	} else {
		flag.Usage()
		log.Fatal("need -fig, -all or -scenario")
	}

	for _, t := range targets {
		start := time.Now()
		var err error
		if *seeds > 1 {
			err = runMulti(strings.TrimSpace(t), sc, opts)
		} else {
			err = run(strings.TrimSpace(t), sc)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s done in %v]\n\n", t, time.Since(start).Round(time.Millisecond))
	}
}

// runScenario dispatches the -scenario target onto the scenario engine.
// The spec's registered seed applies unless the -seed flag was explicitly
// passed (haveSeed), so any seed value — including 0 — can be forced.
func runScenario(name string, seed int64, haveSeed bool, seeds, parallel int, estimators []string) error {
	scen, ok := rlir.ScenarioByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (registered: %s)", name, strings.Join(rlir.ScenarioNames(), ", "))
	}
	spec := scen.Spec
	if haveSeed {
		spec.Seed = seed
	}
	if len(estimators) > 0 {
		spec.Deploy.Estimators = estimators
	}
	if seeds > 1 {
		mr, err := rlir.RunScenarioMulti(spec, rlir.ScenarioMultiOpts{Seeds: seeds, Workers: parallel})
		if err != nil {
			return err
		}
		fmt.Print(mr.Render())
		return nil
	}
	res, err := rlir.RunScenario(spec)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

// unknownTarget is the error an unrecognized -fig value produces: non-zero
// exit, listing every valid target.
func unknownTarget(target string) error {
	return fmt.Errorf("unknown -fig target %q (valid: %s)", target, strings.Join(validTargets, " "))
}

func pickScale(name string) rlir.Scale {
	switch name {
	case "small":
		return rlir.SmallScale()
	case "default":
		return rlir.DefaultScale()
	case "full":
		return rlir.FullScale()
	default:
		log.Fatalf("unknown scale %q", name)
		panic("unreachable")
	}
}

// csvOut, when non-empty, receives figure series as CSV files.
var csvOut string

func emitFigure(f rlir.Figure) {
	fmt.Print(f.Render())
	if csvOut == "" {
		return
	}
	files, err := f.WriteCSV(csvOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d CSV series to %s\n", len(files), csvOut)
}

func run(target string, sc rlir.Scale) error {
	switch target {
	case "4a":
		emitFigure(rlir.Fig4a(sc))
	case "4b":
		emitFigure(rlir.Fig4b(sc))
	case "4c":
		emitFigure(rlir.Fig4c(sc))
	case "5":
		r := rlir.Fig5(sc, nil)
		fmt.Print(r.Render())
		if csvOut != "" {
			if _, err := r.WriteCSV(csvOut); err != nil {
				return err
			}
		}
	case "placement":
		return runPlacement()
	case "scalars":
		fmt.Print(rlir.RunScalars(sc).Render())
	case "A1":
		cfg := rlir.DefaultFatTreeConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.RenderAblationDemux(rlir.AblationDemux(cfg)))
	case "A2":
		fmt.Print(rlir.RenderEstimators(rlir.AblationEstimators(sc, 0.8)))
	case "A3":
		fmt.Print(rlir.RenderClocks(rlir.AblationClocks(sc, 0.8)))
	case "B1":
		fmt.Print(rlir.RunBaselines(sc, 0.85).Render())
	case "L1":
		cfg := rlir.DefaultLocalizationConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.RunLocalization(cfg).Render())
	default:
		return unknownTarget(target)
	}
	return nil
}

// runMulti is the multi-seed dispatch: the same targets, re-recorded as
// mean ± CI over the derived seeds.
func runMulti(target string, sc rlir.Scale, opts rlir.MultiOpts) error {
	switch target {
	case "4a":
		fmt.Print(rlir.Fig4aMulti(sc, opts).Render())
	case "4b":
		fmt.Print(rlir.Fig4bMulti(sc, opts).Render())
	case "4c":
		fmt.Print(rlir.Fig4cMulti(sc, opts).Render())
	case "5":
		fmt.Println("fig5 runs single-seed (a within-run differential measurement); rerun without -seeds")
		return run(target, sc)
	case "placement":
		return runPlacement() // exact combinatorics: seed-independent
	case "scalars":
		fmt.Print(rlir.MultiScalars(sc, opts).Render())
	case "A1":
		cfg := rlir.DefaultFatTreeConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.RenderDemuxCI(rlir.MultiDemux(cfg, opts), opts.Seeds))
	case "A2":
		fmt.Print(rlir.RenderEstimatorsCI(rlir.MultiEstimators(sc, 0.8, opts), opts.Seeds))
	case "A3":
		fmt.Print(rlir.RenderClocksCI(rlir.MultiClocks(sc, 0.8, opts), opts.Seeds))
	case "B1":
		fmt.Print(rlir.MultiBaselines(sc, 0.85, opts).Render())
	case "L1":
		cfg := rlir.DefaultLocalizationConfig()
		cfg.Seed = sc.Seed
		fmt.Print(rlir.MultiLocalization(cfg, opts).Render())
	default:
		return unknownTarget(target)
	}
	return nil
}

func runPlacement() error {
	rows, err := rlir.PlacementTable([]int{4, 8, 16, 32, 48})
	if err != nil {
		return err
	}
	fmt.Println("== §3.1: deployment complexity (measurement instances) ==")
	fmt.Print(rlir.FormatPlacementTable(rows))
	return nil
}
