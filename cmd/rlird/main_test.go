package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error; "" = must parse
	}{
		{"defaults", []string{}, ""},
		{"tcp and http", []string{"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0"}, ""},
		{"unix only", []string{"-listen", "", "-unix", "/tmp/x.sock"}, ""},
		{"sized", []string{"-shards", "8", "-depth", "32", "-window", "5s", "-drain", "1s"}, ""},
		{"check config", []string{"-check-config"}, ""},
		{"no listener", []string{"-listen", ""}, "no ingest listener"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"extra"}, "unexpected arguments"},
		{"missing config", []string{"-config", "/nonexistent/rlird.json"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestConfigFileAndFlagPrecedence pins the -config contract: file fields
// apply, explicitly set flags win.
func TestConfigFileAndFlagPrecedence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rlird.json")
	cfg := `{"listen": "127.0.0.1:9999", "shards": 6, "window_ns": 3000000000}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := parseArgs([]string{"-config", path})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Listen != "127.0.0.1:9999" || o.cfg.Shards != 6 || o.cfg.Window != 3*time.Second {
		t.Fatalf("config file not applied: %+v", o.cfg)
	}

	o, err = parseArgs([]string{"-config", path, "-listen", "127.0.0.1:1234", "-shards", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Listen != "127.0.0.1:1234" || o.cfg.Shards != 2 {
		t.Fatalf("flags did not override the file: %+v", o.cfg)
	}
	if o.cfg.Window != 3*time.Second {
		t.Fatalf("unset flag clobbered the file's window: %+v", o.cfg)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"shardz": 4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseArgs([]string{"-config", bad}); err == nil {
		t.Fatal("misspelled config field accepted")
	}
}

// TestBoundedTableFlags pins the memory-bound surface: -max-flows,
// -flow-window and -max-classes reach the service config from flags and
// from the JSON config file, with flags winning.
func TestBoundedTableFlags(t *testing.T) {
	o, err := parseArgs([]string{"-max-flows", "1000", "-flow-window", "90s", "-max-classes", "64"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.MaxFlows != 1000 || o.cfg.FlowWindow != 90*time.Second || o.cfg.MaxClasses != 64 {
		t.Fatalf("bound flags not applied: %+v", o.cfg)
	}

	path := filepath.Join(t.TempDir(), "rlird.json")
	cfg := `{"listen": "127.0.0.1:9999", "max_flows": 500, "flow_window_ns": 60000000000, "max_classes": 32}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err = parseArgs([]string{"-config", path})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.MaxFlows != 500 || o.cfg.FlowWindow != time.Minute || o.cfg.MaxClasses != 32 {
		t.Fatalf("config-file bounds not applied: %+v", o.cfg)
	}
	o, err = parseArgs([]string{"-config", path, "-max-flows", "2000"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.MaxFlows != 2000 || o.cfg.FlowWindow != time.Minute {
		t.Fatalf("flag did not override the file's cap: %+v", o.cfg)
	}
}

func TestCheckConfigPrintsJSON(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-check-config", "-shards", "4"}, &buf, nil); err != nil {
		t.Fatal(err)
	}
	var cfg rlir.ServiceConfig
	if err := json.Unmarshal([]byte(buf.String()), &cfg); err != nil {
		t.Fatalf("-check-config output is not JSON: %v\n%s", err, buf.String())
	}
	if cfg.Shards != 4 || cfg.Listen == "" {
		t.Fatalf("effective config wrong: %+v", cfg)
	}
}

// TestRunServesAndShutsDownOnSignal drives the real daemon loop: ephemeral
// ports, a client streaming while SIGTERM arrives, a graceful exit.
func TestRunServesAndShutsDownOnSignal(t *testing.T) {
	ready := make(chan *rlir.MeasurementService, 1)
	var out strings.Builder
	var mu sync.Mutex
	errCh := make(chan error, 1)
	go func() {
		mu.Lock()
		defer mu.Unlock()
		errCh <- run([]string{"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0", "-drain", "500ms"}, &out, ready)
	}()
	s := <-ready

	c, err := rlir.DialService("tcp", s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := rlir.FlowKey{Src: rlir.MustParseAddr("10.0.0.1"), Dst: rlir.MustParseAddr("10.0.1.1"), SrcPort: 1, DstPort: 2, Proto: 6}
	for i := 0; i < 100; i++ {
		if err := c.Add(key, time.Microsecond, time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Collector().SamplesIngested() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("samples not ingested")
		}
		time.Sleep(time.Millisecond)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	mu.Lock()
	output := out.String()
	mu.Unlock()
	for _, want := range []string{"ingest listening on tcp", "query API on http://", "draining", "final state 1 flows, 100 samples"} {
		if !strings.Contains(output, want) {
			t.Errorf("daemon output missing %q:\n%s", want, output)
		}
	}
}
