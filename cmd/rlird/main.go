// Command rlird is the long-lived measurement service: it listens for
// collector wire frames (per-packet latency samples and NetFlow records)
// on TCP and/or Unix sockets, drains them through the sharded collector
// plane with bounded-queue backpressure, and serves rolling per-flow and
// per-router aggregates over an HTTP API:
//
//	/flows       per-flow aggregate table (sorted; ?limit=N)
//	/routers     per-exporter aggregates (hello-frame identity)
//	/comparison  streaming estimate-vs-truth scoring (in-band ground truth)
//	/rollup      aggregation tiers below the flow table (classes, router)
//	/healthz     liveness, totals, rolling ingest rate
//	/metrics     Prometheus text exposition
//
// With -max-flows and/or -flow-window set the flow table is memory-bounded:
// least-recently-seen flows fold into per-class and per-router rollup
// sketches instead of growing the table, so a million-flow churn holds a
// flat footprint while /rollup keeps the evicted tail queryable.
//
// Configuration comes from flags, or a JSON file (-config) that flags
// override. SIGINT/SIGTERM shut the service down gracefully: listeners
// close first, streaming connections get the drain window, and the final
// flow table stays queryable until the process exits.
//
// Usage:
//
//	rlird -listen 127.0.0.1:7171 -http 127.0.0.1:7172
//	rlird -unix /tmp/rlird.sock -http 127.0.0.1:7172 -shards 8
//	rlird -config rlird.json -check-config
//
// Drive it with cmd/loadgen, which replays captured scenario traffic at a
// configurable rate over concurrent connections.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rlird:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	cfg         rlir.ServiceConfig
	checkConfig bool
}

// parseArgs parses flags into a service config, loading -config first so
// explicitly set flags override the file. Split from run so tests can
// exercise the flag surface without binding sockets.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("rlird", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	configPath := fs.String("config", "", "JSON config file (flags override its fields)")
	listen := fs.String("listen", "127.0.0.1:7171", "TCP ingest address (empty disables)")
	unix := fs.String("unix", "", "Unix-socket ingest path (empty disables)")
	httpAddr := fs.String("http", "127.0.0.1:7172", "HTTP query API address (empty disables)")
	shards := fs.Int("shards", 0, "collector shards (0 = GOMAXPROCS, capped at 8)")
	depth := fs.Int("depth", 0, "per-shard queue depth in batches (0 = default 16)")
	maxRecords := fs.Int("max-frame-records", 0, "per-frame record bound (0 = codec default)")
	window := fs.Duration("window", 0, "rolling ingest-rate window (0 = default 10s)")
	drain := fs.Duration("drain", 0, "graceful-shutdown drain window (0 = default 5s)")
	maxFlows := fs.Int("max-flows", 0, "per-router live flow cap; LRU flows fold into the rollup (0 = unbounded)")
	flowWindow := fs.Duration("flow-window", 0, "idle time before a flow expires into the rollup (0 = never)")
	maxClasses := fs.Int("max-classes", 0, "rollup flow-class cap; overflow folds into the router tier (0 = default)")
	fs.BoolVar(&o.checkConfig, "check-config", false, "print the effective config as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *configPath != "" {
		cfg, err := rlir.LoadServiceConfig(*configPath)
		if err != nil {
			return o, err
		}
		o.cfg = cfg
	}
	// Flags the user actually set override the file; defaults apply only
	// when neither file nor flag speaks.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["listen"] || *configPath == "" {
		o.cfg.Listen = *listen
	}
	if set["unix"] {
		o.cfg.Unix = *unix
	}
	if set["http"] || *configPath == "" {
		o.cfg.HTTP = *httpAddr
	}
	if set["shards"] {
		o.cfg.Shards = *shards
	}
	if set["depth"] {
		o.cfg.Depth = *depth
	}
	if set["max-frame-records"] {
		o.cfg.MaxFrameRecords = *maxRecords
	}
	if set["window"] {
		o.cfg.Window = *window
	}
	if set["drain"] {
		o.cfg.DrainTimeout = *drain
	}
	if set["max-flows"] {
		o.cfg.MaxFlows = *maxFlows
	}
	if set["flow-window"] {
		o.cfg.FlowWindow = *flowWindow
	}
	if set["max-classes"] {
		o.cfg.MaxClasses = *maxClasses
	}
	if o.cfg.Listen == "" && o.cfg.Unix == "" {
		return o, fmt.Errorf("no ingest listener: set -listen and/or -unix")
	}
	return o, nil
}

// run starts the service and blocks until a shutdown signal. ready (may be
// nil) receives the server once it is listening — the test hook standing in
// for "the process printed its addresses".
func run(args []string, out io.Writer, ready chan<- *rlir.MeasurementService) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	if o.checkConfig {
		data, err := json.MarshalIndent(o.cfg, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}

	s, err := rlir.NewMeasurementService(o.cfg)
	if err != nil {
		return err
	}
	if a := s.Addr(); a != nil {
		fmt.Fprintf(out, "rlird: ingest listening on tcp %s\n", a)
	}
	if o.cfg.Unix != "" {
		fmt.Fprintf(out, "rlird: ingest listening on unix %s\n", o.cfg.Unix)
	}
	if a := s.HTTPAddr(); a != nil {
		fmt.Fprintf(out, "rlird: query API on http://%s\n", a)
	}
	if ready != nil {
		ready <- s
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(out, "rlird: %v, draining...\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(out, "rlird: %v\n", err)
	}
	snap := s.Snapshot()
	var samples int64
	for i := range snap {
		samples += snap[i].Est.N()
	}
	fmt.Fprintf(out, "rlird: final state %d flows, %d samples\n", len(snap), samples)
	return nil
}
