// Command rlirsim runs a single RLIR simulation and prints per-flow
// accuracy results: either the paper's two-switch tandem (Figure 3) or a
// full k-ary fat-tree deployment (Figure 1).
//
// Usage:
//
//	rlirsim -topology tandem -scheme static -model random -util 0.93
//	rlirsim -topology fattree -k 4 -demux reverse-ecmp
//	rlirsim -cpuprofile cpu.pprof -memprofile mem.pprof   # go tool pprof output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	rlir "github.com/netmeasure/rlir"
	"github.com/netmeasure/rlir/internal/core"
)

// Valid values for every enumerated flag. An unknown value exits non-zero
// listing the valid ones (the same contract cmd/experiments pins for
// -fig).
var (
	validTopologies = []string{"tandem", "fattree"}
	validSchemes    = []string{"static", "adaptive", "none"}
	validModels     = []string{"random", "bursty", "none"}
	validScales     = []string{"small", "default", "full"}
	validEstimators = []string{"linear", "left", "right", "nearest"}
	validDemuxes    = []string{"none", "marking", "reverse-ecmp", "oracle"}
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rlirsim:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	topology   string
	scheme     string
	staticN    int
	model      string
	util       float64
	scale      string
	seed       int64
	estName    string
	k          int
	demux      string
	duration   time.Duration
	topn       int
	cpuprofile string
	memprofile string
}

// badValue is the uniform rejection: echo the flag and value, list what is
// valid.
func badValue(flagName, got string, valid []string) error {
	return fmt.Errorf("unknown -%s %q (valid: %s)", flagName, got, strings.Join(valid, ", "))
}

// parseArgs parses and validates the command line. Split from run so tests
// can exercise the flag surface without executing simulations.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("rlirsim", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&o.topology, "topology", "tandem", strings.Join(validTopologies, " | "))
	fs.StringVar(&o.scheme, "scheme", "static", strings.Join(validSchemes, " | "))
	fs.IntVar(&o.staticN, "n", 100, "static scheme's 1-and-n gap")
	fs.StringVar(&o.model, "model", "random", strings.Join(validModels, " | ")+" (tandem)")
	fs.Float64Var(&o.util, "util", 0.93, "target bottleneck utilization (tandem)")
	fs.StringVar(&o.scale, "scale", "default", strings.Join(validScales, " | "))
	fs.Int64Var(&o.seed, "seed", 1, "deterministic seed")
	fs.StringVar(&o.estName, "estimator", "linear", strings.Join(validEstimators, " | "))
	fs.IntVar(&o.k, "k", 4, "fat-tree arity (fattree)")
	fs.StringVar(&o.demux, "demux", "reverse-ecmp", strings.Join(validDemuxes, " | ")+" (fattree)")
	fs.DurationVar(&o.duration, "duration", 0, "override trace duration")
	fs.IntVar(&o.topn, "top", 10, "per-flow rows to print")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	fs.StringVar(&o.memprofile, "memprofile", "", "write an allocation profile to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	switch {
	case !slices.Contains(validTopologies, o.topology):
		return o, badValue("topology", o.topology, validTopologies)
	case !slices.Contains(validSchemes, o.scheme):
		return o, badValue("scheme", o.scheme, validSchemes)
	case !slices.Contains(validModels, o.model):
		return o, badValue("model", o.model, validModels)
	case !slices.Contains(validScales, o.scale):
		return o, badValue("scale", o.scale, validScales)
	case !slices.Contains(validEstimators, o.estName):
		return o, badValue("estimator", o.estName, validEstimators)
	case !slices.Contains(validDemuxes, o.demux):
		return o, badValue("demux", o.demux, validDemuxes)
	}
	if o.staticN < 0 {
		return o, fmt.Errorf("-n %d < 0", o.staticN)
	}
	return o, nil
}

func run(args []string, out io.Writer) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.topology == "tandem" {
		err = runTandem(o, out)
	} else {
		err = runFatTree(o, out)
	}
	if err != nil {
		return err
	}
	if o.memprofile != "" {
		f, ferr := os.Create(o.memprofile)
		if ferr != nil {
			return fmt.Errorf("-memprofile: %w", ferr)
		}
		defer f.Close()
		runtime.GC() // flush to allocation ground truth before snapshotting
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			return fmt.Errorf("-memprofile: %w", werr)
		}
	}
	return nil
}

// The pick* switches are exhaustive over their valid* lists; the panic
// defaults catch a list updated without its switch (parseArgs would
// otherwise let the new value silently run the old default).
func pickScale(o options) rlir.Scale {
	switch o.scale {
	case "small":
		return rlir.SmallScale()
	case "default":
		return rlir.DefaultScale()
	case "full":
		return rlir.FullScale()
	default:
		panic("rlirsim: -scale " + o.scale + " validated but not dispatched")
	}
}

func pickScheme(o options) rlir.InjectionScheme {
	switch o.scheme {
	case "static":
		return rlir.Static{N: o.staticN}
	case "adaptive":
		return rlir.DefaultAdaptive()
	case "none":
		return nil
	default:
		panic("rlirsim: -scheme " + o.scheme + " validated but not dispatched")
	}
}

func pickEstimator(o options) core.Estimator {
	switch o.estName {
	case "linear":
		return rlir.Linear
	case "left":
		return rlir.LeftRef
	case "right":
		return rlir.RightRef
	case "nearest":
		return rlir.Nearest
	default:
		panic("rlirsim: -estimator " + o.estName + " validated but not dispatched")
	}
}

func runTandem(o options, out io.Writer) error {
	sc := pickScale(o)
	sc.Seed = o.seed
	if o.duration > 0 {
		sc.Duration = o.duration
	}
	cfg := rlir.TandemConfig{
		Scale:        sc,
		Scheme:       pickScheme(o),
		AdaptiveLive: o.scheme == "adaptive",
		TargetUtil:   o.util,
		Estimator:    pickEstimator(o),
	}
	switch o.model {
	case "random":
		cfg.Model = rlir.CrossUniform
	case "bursty":
		cfg.Model = rlir.CrossBursty
	case "none":
		cfg.Model = rlir.CrossNone
	default:
		panic("rlirsim: -model " + o.model + " validated but not dispatched")
	}

	res := rlir.RunTandem(cfg)
	fmt.Fprintf(out, "run: %s\n", res.Label())
	fmt.Fprintf(out, "achieved utilization: %.1f%%\n", res.AchievedUtil*100)
	fmt.Fprintf(out, "summary: %s\n", res.Summary)
	fmt.Fprintf(out, "receiver: %+v\n", res.Receiver)
	fmt.Fprintf(out, "sender:   %+v\n", res.Sender)
	fmt.Fprintf(out, "regular loss rate: %.6f\n", res.LossRate())
	fmt.Fprintln(out)
	fmt.Fprint(out, core.FormatResults(res.Results, o.topn))
	fmt.Fprintln(out)
	fmt.Fprint(out, rlir.MeanErrCDF(res.Results).Render("relative error (mean estimates)", 1e-3, 1e1, 9))
	return nil
}

func runFatTree(o options, out io.Writer) error {
	cfg := rlir.DefaultFatTreeConfig()
	cfg.K = o.k
	cfg.Seed = o.seed
	if o.duration > 0 {
		cfg.Duration = o.duration
	}
	cfg.Scheme = pickScheme(o)
	switch o.demux {
	case "none":
		cfg.Strategy = rlir.DemuxNone
	case "marking":
		cfg.Strategy = rlir.DemuxMark
	case "reverse-ecmp":
		cfg.Strategy = rlir.DemuxReverseECMP
	case "oracle":
		cfg.Strategy = rlir.DemuxOracle
	default:
		panic("rlirsim: -demux " + o.demux + " validated but not dispatched")
	}

	res := rlir.RunFatTree(cfg)
	fmt.Fprintf(out, "fat-tree k=%d, demux=%s, injected=%d packets\n", o.k, cfg.Strategy, res.Injected)
	fmt.Fprintf(out, "downstream (core->ToR): %s\n", res.Downstream)
	fmt.Fprintf(out, "upstream   (ToR->core): %s\n", res.Upstream)
	fmt.Fprintf(out, "misattribution: %.4f\n", res.Misattribution)
	return nil
}
