// Command rlirsim runs a single RLIR simulation and prints per-flow
// accuracy results: either the paper's two-switch tandem (Figure 3) or a
// full k-ary fat-tree deployment (Figure 1).
//
// Usage:
//
//	rlirsim -topology tandem -scheme static -model random -util 0.93
//	rlirsim -topology fattree -k 4 -demux reverse-ecmp
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	rlir "github.com/netmeasure/rlir"
	"github.com/netmeasure/rlir/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rlirsim: ")
	var (
		topology = flag.String("topology", "tandem", "tandem | fattree")
		scheme   = flag.String("scheme", "static", "static | adaptive | none")
		staticN  = flag.Int("n", 100, "static scheme's 1-and-n gap")
		model    = flag.String("model", "random", "random | bursty | none (tandem)")
		util     = flag.Float64("util", 0.93, "target bottleneck utilization (tandem)")
		scale    = flag.String("scale", "default", "small | default | full")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		estName  = flag.String("estimator", "linear", "linear | left | right | nearest")
		k        = flag.Int("k", 4, "fat-tree arity (fattree)")
		demux    = flag.String("demux", "reverse-ecmp", "none | marking | reverse-ecmp | oracle (fattree)")
		duration = flag.Duration("duration", 0, "override trace duration")
		topn     = flag.Int("top", 10, "per-flow rows to print")
	)
	flag.Parse()

	switch *topology {
	case "tandem":
		runTandem(*scheme, *staticN, *model, *util, *scale, *seed, *estName, *duration, *topn)
	case "fattree":
		runFatTree(*k, *demux, *scheme, *staticN, *seed, *duration)
	default:
		log.Fatalf("unknown topology %q", *topology)
	}
}

func pickScale(name string) rlir.Scale {
	switch name {
	case "small":
		return rlir.SmallScale()
	case "default":
		return rlir.DefaultScale()
	case "full":
		return rlir.FullScale()
	default:
		log.Fatalf("unknown scale %q", name)
		panic("unreachable")
	}
}

func pickScheme(name string, n int) rlir.InjectionScheme {
	switch name {
	case "static":
		return rlir.Static{N: n}
	case "adaptive":
		return rlir.DefaultAdaptive()
	case "none":
		return nil
	default:
		log.Fatalf("unknown scheme %q", name)
		panic("unreachable")
	}
}

func pickEstimator(name string) core.Estimator {
	switch name {
	case "linear":
		return rlir.Linear
	case "left":
		return rlir.LeftRef
	case "right":
		return rlir.RightRef
	case "nearest":
		return rlir.Nearest
	default:
		log.Fatalf("unknown estimator %q", name)
		panic("unreachable")
	}
}

func runTandem(scheme string, n int, model string, util float64, scaleName string, seed int64, est string, duration time.Duration, topn int) {
	sc := pickScale(scaleName)
	sc.Seed = seed
	if duration > 0 {
		sc.Duration = duration
	}
	cfg := rlir.TandemConfig{
		Scale:        sc,
		Scheme:       pickScheme(scheme, n),
		AdaptiveLive: scheme == "adaptive",
		TargetUtil:   util,
		Estimator:    pickEstimator(est),
	}
	switch model {
	case "random":
		cfg.Model = rlir.CrossUniform
	case "bursty":
		cfg.Model = rlir.CrossBursty
	case "none":
		cfg.Model = rlir.CrossNone
	default:
		log.Fatalf("unknown cross model %q", model)
	}

	res := rlir.RunTandem(cfg)
	fmt.Printf("run: %s\n", res.Label())
	fmt.Printf("achieved utilization: %.1f%%\n", res.AchievedUtil*100)
	fmt.Printf("summary: %s\n", res.Summary)
	fmt.Printf("receiver: %+v\n", res.Receiver)
	fmt.Printf("sender:   %+v\n", res.Sender)
	fmt.Printf("regular loss rate: %.6f\n", res.LossRate())
	fmt.Println()
	fmt.Print(core.FormatResults(res.Results, topn))
	fmt.Println()
	fmt.Print(rlir.MeanErrCDF(res.Results).Render("relative error (mean estimates)", 1e-3, 1e1, 9))
}

func runFatTree(k int, demux, scheme string, n int, seed int64, duration time.Duration) {
	cfg := rlir.DefaultFatTreeConfig()
	cfg.K = k
	cfg.Seed = seed
	if duration > 0 {
		cfg.Duration = duration
	}
	cfg.Scheme = pickScheme(scheme, n)
	switch demux {
	case "none":
		cfg.Strategy = rlir.DemuxNone
	case "marking":
		cfg.Strategy = rlir.DemuxMark
	case "reverse-ecmp":
		cfg.Strategy = rlir.DemuxReverseECMP
	case "oracle":
		cfg.Strategy = rlir.DemuxOracle
	default:
		log.Fatalf("unknown demux %q", demux)
	}

	res := rlir.RunFatTree(cfg)
	fmt.Printf("fat-tree k=%d, demux=%s, injected=%d packets\n", k, cfg.Strategy, res.Injected)
	fmt.Printf("downstream (core->ToR): %s\n", res.Downstream)
	fmt.Printf("upstream   (ToR->core): %s\n", res.Upstream)
	fmt.Printf("misattribution: %.4f\n", res.Misattribution)
}
