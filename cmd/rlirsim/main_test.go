package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestParseArgsValidation pins the flag surface: every enumerated flag
// rejects unknown values with an error listing the valid ones, without
// running a simulation.
func TestParseArgsValidation(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		want  string   // substring of the expected error; "" = must parse
		lists []string // values the error must enumerate
	}{
		{"defaults", nil, "", nil},
		{"fattree", []string{"-topology", "fattree", "-demux", "oracle"}, "", nil},
		{"bad topology", []string{"-topology", "ring"}, `-topology "ring"`, validTopologies},
		{"bad scheme", []string{"-scheme", "exotic"}, `-scheme "exotic"`, validSchemes},
		{"bad model", []string{"-model", "fractal"}, `-model "fractal"`, validModels},
		{"bad scale", []string{"-scale", "galactic"}, `-scale "galactic"`, validScales},
		{"bad estimator", []string{"-estimator", "cubic"}, `-estimator "cubic"`, validEstimators},
		{"bad demux", []string{"-demux", "psychic"}, `-demux "psychic"`, validDemuxes},
		{"negative gap", []string{"-n", "-3"}, "-n", nil},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate", nil},
		{"stray args", []string{"extra"}, "unexpected arguments", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
			for _, v := range tc.lists {
				if !strings.Contains(err.Error(), v) {
					t.Fatalf("error %q does not list valid value %q", err, v)
				}
			}
		})
	}
}

// TestMainExitsNonZeroOnUnknownValue re-executes the test binary as the
// real main and asserts the process-level contract: an unknown flag value
// means a non-zero exit with the valid values on stderr.
func TestMainExitsNonZeroOnUnknownValue(t *testing.T) {
	if os.Getenv("RLIRSIM_MAIN_PROBE") == "1" {
		os.Args = []string{"rlirsim", "-topology", "ring"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsNonZeroOnUnknownValue")
	cmd.Env = append(os.Environ(), "RLIRSIM_MAIN_PROBE=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("main accepted an unknown -topology; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected a non-zero exit, got %v; output:\n%s", err, out)
	}
	for _, v := range validTopologies {
		if !strings.Contains(string(out), v) {
			t.Fatalf("failure output does not list topology %q:\n%s", v, out)
		}
	}
}
