package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error; "" = must parse
	}{
		{"single instance", []string{"-endpoints", "http://127.0.0.1:7172"}, ""},
		{"fleet", []string{"-endpoints", "http://a:1,http://b:2", "-listen", "127.0.0.1:0", "-timeout", "2s"}, ""},
		{"zero instances", []string{}, "no instances"},
		{"empty entry", []string{"-endpoints", "http://a:1,"}, "empty entry"},
		{"duplicate entry", []string{"-endpoints", "http://a:1,http://a:1"}, "twice"},
		{"empty listen", []string{"-endpoints", "http://a:1", "-listen", ""}, "-listen"},
		{"zero timeout", []string{"-endpoints", "http://a:1", "-timeout", "0s"}, "-timeout"},
		{"unknown flag", []string{"-frobnicate"}, "frobnicate"},
		{"stray args", []string{"-endpoints", "http://a:1", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseArgs(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunServesMergedAPI drives the real daemon loop: two in-process rlird
// instances, the front-end on an ephemeral port, merged queries answered,
// then a graceful SIGTERM exit.
func TestRunServesMergedAPI(t *testing.T) {
	var servers [2]*rlir.MeasurementService
	var endpoints []string
	for i := range servers {
		s, err := rlir.NewMeasurementService(rlir.ServiceConfig{
			Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Shards: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown(t.Context())
		servers[i] = s
		endpoints = append(endpoints, "http://"+s.HTTPAddr().String())
	}
	// One distinct flow per instance; the front-end merges whatever each
	// partition holds.
	for i, s := range servers {
		c, err := rlir.DialService("tcp", s.Addr().String(), 0)
		if err != nil {
			t.Fatal(err)
		}
		key := rlir.FlowKey{
			Src: rlir.MustParseAddr("10.0.0.1"), Dst: rlir.MustParseAddr(fmt.Sprintf("10.0.1.%d", i+1)),
			SrcPort: uint16(1000 + i), DstPort: 7171, Proto: 6,
		}
		for j := 0; j < 50; j++ {
			if err := c.Add(key, time.Microsecond, time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for s.Collector().SamplesIngested() < 50 {
			if time.Now().After(deadline) {
				t.Fatal("samples not ingested")
			}
			time.Sleep(time.Millisecond)
		}
	}

	var out strings.Builder
	var mu sync.Mutex
	errCh := make(chan error, 1)
	ready := make(chan net.Addr, 1)
	go func() {
		mu.Lock()
		defer mu.Unlock()
		errCh <- run([]string{"-endpoints", strings.Join(endpoints, ","), "-listen", "127.0.0.1:0"}, &out, ready)
	}()
	addr := <-ready
	base := "http://" + addr.String()

	var health rlir.FleetHealth
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Instances != 2 || health.Flows != 2 {
		t.Fatalf("fleet health wrong: %+v", health)
	}

	resp, err = http.Get(base + "/flows")
	if err != nil {
		t.Fatal(err)
	}
	var flows []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&flows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(flows) != 2 {
		t.Fatalf("merged /flows has %d rows, want 2", len(flows))
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("front-end did not exit on SIGTERM")
	}
	mu.Lock()
	output := out.String()
	mu.Unlock()
	for _, want := range []string{"merged query API on http://", "fleet of 2", "instance 1:", "shutting down"} {
		if !strings.Contains(output, want) {
			t.Errorf("daemon output missing %q:\n%s", want, output)
		}
	}
}

// TestRunSkipsStaleInstance re-executes the test binary as the real
// front-end process pointed at one current rlird instance and one stale
// peer whose /snapshot speaks the pre-versioning schema (no "version"
// field). The spawned front-end must serve the current instance's flows,
// skip the stale one, and still shut down cleanly on SIGTERM.
func TestRunSkipsStaleInstance(t *testing.T) {
	if os.Getenv("RLIRFLEET_STALE_PROBE") == "1" {
		os.Args = []string{"rlirfleet", "-endpoints", os.Getenv("RLIRFLEET_STALE_ENDPOINTS"), "-listen", "127.0.0.1:0"}
		main()
		return
	}

	// A stale peer: every query answers with a version-0 snapshot body.
	stale := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"samples":9,"records":0,"flows":[]}`)
	}))
	defer stale.Close()

	s, err := rlir.NewMeasurementService(rlir.ServiceConfig{
		Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0", Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(t.Context())
	c, err := rlir.DialService("tcp", s.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := rlir.FlowKey{
		Src: rlir.MustParseAddr("10.0.0.1"), Dst: rlir.MustParseAddr("10.0.1.1"),
		SrcPort: 1000, DstPort: 7171, Proto: 6,
	}
	for j := 0; j < 20; j++ {
		if err := c.Add(key, time.Microsecond, time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Collector().SamplesIngested() < 20 {
		if time.Now().After(deadline) {
			t.Fatal("samples not ingested")
		}
		time.Sleep(time.Millisecond)
	}

	cmd := exec.Command(os.Args[0], "-test.run", "TestRunSkipsStaleInstance")
	cmd.Env = append(os.Environ(),
		"RLIRFLEET_STALE_PROBE=1",
		"RLIRFLEET_STALE_ENDPOINTS=http://"+s.HTTPAddr().String()+","+stale.URL,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address; that is the readiness signal.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, after, ok := strings.Cut(line, "merged query API on "); ok {
			base = strings.Fields(after)[0]
			break
		}
	}
	if base == "" {
		t.Fatalf("front-end never announced its address (scan err: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep draining so the child never blocks

	resp, err := http.Get(base + "/flows")
	if err != nil {
		t.Fatal(err)
	}
	var flows []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&flows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/flows status %d with a stale peer, want 200 degraded", resp.StatusCode)
	}
	if len(flows) != 1 {
		t.Fatalf("/flows has %d rows, want only the current instance's 1", len(flows))
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("front-end exited with %v, want clean SIGTERM shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("front-end did not exit on SIGTERM")
	}
}

// TestMainExitsOnZeroInstances re-executes the test binary as the real main:
// a missing -endpoints must exit 1 with the constraint on stderr.
func TestMainExitsOnZeroInstances(t *testing.T) {
	if os.Getenv("RLIRFLEET_MAIN_PROBE") == "1" {
		os.Args = []string{"rlirfleet"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsOnZeroInstances")
	cmd.Env = append(os.Environ(), "RLIRFLEET_MAIN_PROBE=1")
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("expected exit 1, got %v; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "no instances") {
		t.Fatalf("failure output does not state the constraint:\n%s", out)
	}
}

// TestMainExitsOnUnknownEndpoint re-executes main with a schemeless endpoint:
// front-end construction must reject it and the process must exit 1.
func TestMainExitsOnUnknownEndpoint(t *testing.T) {
	if os.Getenv("RLIRFLEET_ENDPOINT_PROBE") == "1" {
		os.Args = []string{"rlirfleet", "-endpoints", "127.0.0.1:7172"}
		main()
		return // unreachable: main must have exited non-zero
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestMainExitsOnUnknownEndpoint")
	cmd.Env = append(os.Environ(), "RLIRFLEET_ENDPOINT_PROBE=1")
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("expected exit 1, got %v; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "bad instance URL") {
		t.Fatalf("failure output does not name the bad URL:\n%s", out)
	}
}
