// Command rlirfleet fronts a partitioned rlird fleet with one merged query
// API. Point it at the query addresses of N rlird instances that each ingest
// a flow-disjoint share of the export stream (cmd/loadgen's comma-separated
// -addr does that partitioning) and it serves the same endpoints a single
// rlird would:
//
//	/flows       merged per-flow aggregate table (sorted; ?limit=N)
//	/routers     per-exporter rows, annotated with the owning instance
//	/comparison  estimate-vs-truth scoring over the merged table
//	/healthz     fleet liveness: ok, degraded, or down
//	/metrics     Prometheus text exposition (rlirfleet_* series)
//
// The merge is exact, not approximate: /flows and /comparison are computed
// from the instances' raw accumulator state, so a fleet-of-N response is
// field-for-field what one rlird holding the whole stream would serve.
// Instances that fail to answer within -timeout are skipped and the fleet
// reports degraded; only a fully-unreachable fleet turns queries into 502s.
// SIGINT/SIGTERM shut the front-end down gracefully.
//
// Usage:
//
//	rlirfleet -endpoints http://127.0.0.1:7172,http://127.0.0.1:7372
//	rlirfleet -endpoints http://10.0.0.1:7172 -listen 127.0.0.1:7272 -timeout 2s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rlir "github.com/netmeasure/rlir"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rlirfleet:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	endpoints []string
	listen    string
	timeout   time.Duration
}

// parseArgs parses and validates the command line. Split from run so tests
// can exercise the flag surface without binding sockets.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("rlirfleet", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	endpoints := fs.String("endpoints", "", "comma-separated rlird query-API base URLs (e.g. http://127.0.0.1:7172,http://127.0.0.1:7372)")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:7272", "HTTP address the merged query API serves on")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-query fan-out budget shared by all instance requests")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *endpoints == "" {
		return o, errors.New("no instances: -endpoints needs at least one rlird base URL")
	}
	seen := map[string]bool{}
	for _, ep := range strings.Split(*endpoints, ",") {
		if ep == "" {
			return o, fmt.Errorf("-endpoints %q has an empty entry", *endpoints)
		}
		if seen[ep] {
			return o, fmt.Errorf("-endpoints lists %q twice", ep)
		}
		seen[ep] = true
		o.endpoints = append(o.endpoints, ep)
	}
	if o.listen == "" {
		return o, errors.New("-listen must not be empty")
	}
	if o.timeout <= 0 {
		return o, fmt.Errorf("-timeout %v <= 0", o.timeout)
	}
	return o, nil
}

// run builds the front-end, serves it, and blocks until a shutdown signal.
// ready (may be nil) receives the bound address once the server is listening
// — the test hook standing in for "the process printed its address".
func run(args []string, out io.Writer, ready chan<- net.Addr) error {
	o, err := parseArgs(args)
	if err != nil {
		return err
	}
	front, err := rlir.NewFleetFrontend(rlir.FleetFrontendConfig{
		Instances: o.endpoints,
		Timeout:   o.timeout,
	})
	if err != nil {
		return err
	}

	// Install the shutdown handler before the address is announced, so a
	// supervisor that signals as soon as it sees the address never races
	// the handler registration.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: front.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(out, "rlirfleet: merged query API on http://%s (fleet of %d)\n", ln.Addr(), front.Instances())
	for i, ep := range o.endpoints {
		fmt.Fprintf(out, "rlirfleet:   instance %d: %s\n", i, ep)
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case got := <-sig:
		fmt.Fprintf(out, "rlirfleet: %v, shutting down...\n", got)
	case err := <-serveErr:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
