package rlir_test

// Documentation enforcement: these tests are the repository's doc lint.
// TestPublicAPIDocumented fails on any undocumented exported identifier in
// the root package, and TestDocsCoverRegistries fails when a registered
// scenario or estimator name is missing from the user-facing markdown —
// the lists in README/DESIGN/EXPERIMENTS are kept true to the registries
// by test, not by hand. The CI docs-verify job additionally executes every
// README quickstart block verbatim (scripts/readme_check.sh).

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"

	rlir "github.com/netmeasure/rlir"
)

// publicFiles are the root-package sources whose exported identifiers form
// the public API surface.
var publicFiles = []string{"rlir.go", "doc.go"}

// TestPublicAPIDocumented parses the public API files and requires a doc
// comment on every exported declaration (a grouped const/var/type decl may
// carry one comment for the group).
func TestPublicAPIDocumented(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range publicFiles {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc.Text() == "" {
					t.Errorf("%s: exported func %s has no doc comment", pos(fset, d), d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc.Text() != ""
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && sp.Doc.Text() == "" {
							t.Errorf("%s: exported type %s has no doc comment", pos(fset, sp), sp.Name.Name)
						}
					case *ast.ValueSpec:
						if !groupDoc && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
							for _, name := range sp.Names {
								if name.IsExported() {
									t.Errorf("%s: exported %s has no doc comment", pos(fset, sp), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
}

func pos(fset *token.FileSet, n ast.Node) string {
	p := fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// TestDocsCoverRegistries pins the markdown to the registries: every
// registered scenario and estimator name must appear in each user-facing
// document, so registering a new one without documenting it fails CI.
func TestDocsCoverRegistries(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}
	names := append(append([]string{}, rlir.ScenarioNames()...), rlir.EstimatorNames()...)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		text := string(data)
		for _, name := range names {
			if !strings.Contains(text, name) {
				t.Errorf("%s does not mention registered name %q", doc, name)
			}
		}
	}
}

// TestReadmeDocumentsEveryCommand requires a quickstart reference for each
// cmd/ subdirectory in the README.
func TestReadmeDocumentsEveryCommand(t *testing.T) {
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(text, "./cmd/"+e.Name()) {
			t.Errorf("README.md has no runnable reference to ./cmd/%s", e.Name())
		}
	}
}
