#!/usr/bin/env bash
# profile.sh — capture CPU and allocation profiles of the simulator hot
# path, the evidence base for allocation burn-down work (the kind that took
# BenchmarkSimulatorThroughput from 812 to 166 allocs/op).
#
# Two capture routes, same pprof output format:
#
#   scripts/profile.sh bench [dir]   # profile BenchmarkSimulatorThroughput
#   scripts/profile.sh sim   [dir]   # profile a cmd/rlirsim tandem run
#
# The bench route uses `go test -cpuprofile/-memprofile` with
# -memprofilerate=1 so every allocation is attributed exactly (slower, but
# the per-op counts then match -benchmem). The sim route exercises the
# same flags cmd/rlirsim exposes to operators. Profiles land in <dir>
# (default ./profiles) as cpu.pprof / mem.pprof plus a pre-rendered
# top-25 text summary; inspect interactively with:
#
#   go tool pprof -http=: profiles/cpu.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-bench}"
dir="${2:-profiles}"
mkdir -p "$dir"

case "$mode" in
  bench)
    echo "profile.sh: profiling BenchmarkSimulatorThroughput (exact alloc attribution)..." >&2
    go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchtime 5x \
      -cpuprofile "$dir/cpu.pprof" -memprofile "$dir/mem.pprof" -memprofilerate=1 .
    ;;
  sim)
    echo "profile.sh: profiling cmd/rlirsim (tandem, default scale)..." >&2
    go run ./cmd/rlirsim -topology tandem -scheme static -model random -util 0.93 \
      -cpuprofile "$dir/cpu.pprof" -memprofile "$dir/mem.pprof" > /dev/null
    ;;
  *)
    echo "profile.sh: unknown mode $mode (valid: bench, sim)" >&2
    exit 2
    ;;
esac

# rlir.test is the bench route's binary; go tool pprof resolves symbols
# from the profile itself for the sim route.
go tool pprof -top -nodecount=25 "$dir/cpu.pprof" > "$dir/cpu.top.txt"
go tool pprof -top -nodecount=25 -sample_index=alloc_objects "$dir/mem.pprof" > "$dir/mem.top.txt"
rm -f rlir.test

echo "profile.sh: wrote $dir/cpu.pprof, $dir/mem.pprof (+ .top.txt summaries)" >&2
grep -m1 -A3 "flat  flat%" "$dir/cpu.top.txt" || true
