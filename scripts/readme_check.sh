#!/usr/bin/env bash
# readme_check.sh — execute the README's quickstart blocks verbatim.
#
# Every fenced ```console block in README.md is turned into a bash script:
# lines starting with "$ " are commands (run in order, from the repository
# root, under set -euo pipefail); all other lines are illustrative output
# and are ignored. A block that exits non-zero fails the check — so the
# README cannot document a command line that does not actually work.
#
# Usage:
#   scripts/readme_check.sh             # check README.md
#   scripts/readme_check.sh DOC.md      # check another markdown file
#
# Exit codes: 0 all blocks pass, 1 a block failed, 2 no blocks found.
set -euo pipefail
cd "$(dirname "$0")/.."

readme="${1:-README.md}"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Extract "<block-number>\t<command>" pairs from the console fences.
awk '
  /^```console$/ { inblock = 1; n++; next }
  inblock && /^```$/ { inblock = 0; next }
  inblock && /^\$ / { print n "\t" substr($0, 3) }
' "$readme" > "$tmpdir/cmds.tsv"

if [ ! -s "$tmpdir/cmds.tsv" ]; then
  echo "readme_check: no \`\`\`console blocks with \$-commands found in $readme" >&2
  exit 2
fi

blocks=$(cut -f1 "$tmpdir/cmds.tsv" | sort -n | uniq)
total=$(echo "$blocks" | wc -l)
fail=0
for b in $blocks; do
  script="$tmpdir/block$b.sh"
  {
    echo "set -euo pipefail"
    awk -F'\t' -v b="$b" '$1 == b { print $2 }' "$tmpdir/cmds.tsv"
  } > "$script"
  echo "readme_check: block $b/$total:" >&2
  sed 's/^/    /' "$script" >&2
  if bash "$script" > "$tmpdir/block$b.log" 2>&1; then
    echo "readme_check: block $b OK" >&2
  else
    echo "readme_check: block $b FAILED; output:" >&2
    sed 's/^/    /' "$tmpdir/block$b.log" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "readme_check: FAILED — the README documents commands that do not run" >&2
  exit 1
fi
echo "readme_check: all $total blocks pass"
