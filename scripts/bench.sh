#!/usr/bin/env bash
# bench.sh — run the perf benchmark suite and record the result as
# BENCH_<N>.json in the repository root, starting the performance
# trajectory across PRs.
#
# Usage:
#   scripts/bench.sh        # picks the next free N (BENCH_1.json, BENCH_2.json, ...)
#   scripts/bench.sh 3      # writes/overwrites BENCH_3.json
#
# Captured: raw simulator throughput (pkts/s, ns/op, B/op, allocs/op) from
# BenchmarkSimulatorThroughput, the headline figure metrics from
# BenchmarkScalars (base utilization, adaptive gap, median relative error
# for static injection at 93% utilization), collector ingest throughput
# (BenchmarkIngest in internal/collector), multi-seed runner scaling
# (BenchmarkRunnerSweep1 vs BenchmarkRunnerSweep4: an 8-seed sweep at 1 vs
# 4 workers, with the wall-clock speedup ratio), the estimator layer's
# shared-tap dispatch overhead (BenchmarkSharedTap in internal/measure:
# per-packet cost of fanning one stream to the full comparison set), the
# secret-key sampling tap (BenchmarkHashSampleTap in internal/measure:
# per-packet cost of the keyed-hash sample decision plus pair matching —
# the path that defeats the delay-gaming router, gated at 0 allocs/op), and
# the streaming service's ingest throughput (BenchmarkServiceIngest4Conns
# in internal/service: four concurrent connections writing pre-encoded
# wire frames over loopback TCP through the full rlird path), and the
# fleet tier (internal/fleet): aggregate ingest across a 4-instance
# partitioned fleet (BenchmarkFleetIngest4x, samples/s) and the
# scatter-gather front-end's merged query latency
# (BenchmarkFleetScatterGather, ms/query), and the bounded-memory
# aggregation tier: quantile-sketch ingest (BenchmarkSketchAdd in
# internal/stats, samples/s) and flow-table eviction throughput under
# full churn (BenchmarkEvictionChurn in internal/collector, samples/s
# through a capped LRU table folding into the rollup), and the parallel
# event engine (BenchmarkScenarioSequential vs BenchmarkScenarioParallel2/4:
# one fat-tree scenario end to end on the sequential vs the conservative
# parallel engine, with the speedup ratios — honest numbers, so on a
# single-core runner they sit at or below 1x).
#
# Every section records the "cpus" the numbers were measured with, so
# downstream consumers (scripts/bench_check.sh) can tell a genuine scaling
# regression from a single-core runner that cannot scale.
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:-}"
if [ -z "$n" ]; then
  n=1
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
fi
out="BENCH_${n}.json"

echo "running benchmark suite (this takes a few minutes)..." >&2
raw=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$|BenchmarkScalars$' \
  -benchmem -benchtime 10x . 2>&1)
raw_collector=$(go test -run '^$' -bench 'BenchmarkIngest$' \
  -benchmem ./internal/collector 2>&1)
raw_runner=$(go test -run '^$' -bench 'BenchmarkRunnerSweep[14]$' \
  -benchtime 3x . 2>&1)
raw_measure=$(go test -run '^$' -bench 'BenchmarkSharedTap$|BenchmarkHashSampleTap$' \
  -benchmem ./internal/measure 2>&1)
raw_service=$(go test -run '^$' -bench 'BenchmarkServiceIngest4Conns$' \
  -benchtime 2s ./internal/service 2>&1)
raw_fleet=$(go test -run '^$' -bench 'BenchmarkFleetIngest4x$|BenchmarkFleetScatterGather$' \
  -benchtime 2s ./internal/fleet 2>&1)
raw_sketch=$(go test -run '^$' -bench 'BenchmarkSketchAdd$' \
  -benchmem ./internal/stats 2>&1)
raw_churn=$(go test -run '^$' -bench 'BenchmarkEvictionChurn$' \
  -benchmem ./internal/collector 2>&1)
raw_par=$(go test -run '^$' -bench 'BenchmarkScenarioSequential$|BenchmarkScenarioParallel[24]$' \
  -benchtime 3x . 2>&1)
raw=$(printf '%s\n%s\n%s\n%s\n%s\n%s\n%s\n%s\n%s\n' "$raw" "$raw_collector" "$raw_runner" "$raw_measure" "$raw_service" "$raw_fleet" "$raw_sketch" "$raw_churn" "$raw_par")

echo "$raw" | grep -E '^Benchmark' >&2

echo "$raw" | awk -v bench="$n" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  -v goversion="$(go env GOVERSION)" -v maxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
  /^BenchmarkSimulatorThroughput/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "ns/op") ns = $i
      if ($(i + 1) == "pkts/s") pkts = $i
      if ($(i + 1) == "B/op") bytes = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
  }
  /^BenchmarkScalars/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "baseUtil") base = $i
      if ($(i + 1) == "adaptiveGap") gap = $i
      if ($(i + 1) == "medianRelErr@93static") err = $i
    }
  }
  /^BenchmarkIngest-/ || /^BenchmarkIngest / {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "samples/s") ingest = $i
      if ($(i + 1) == "ns/op") ingestns = $i
    }
  }
  /^BenchmarkRunnerSweep1/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") sweep1 = $i
  }
  /^BenchmarkRunnerSweep4/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "ns/op") sweep4 = $i
      if ($(i + 1) == "medianRelErr") sweeperr = $i
      if ($(i + 1) == "medianRelErrCI95") sweepci = $i
    }
  }
  /^BenchmarkSharedTap/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "pkts/s") tap = $i
      if ($(i + 1) == "ns/op") tapns = $i
      if ($(i + 1) == "allocs/op") tapallocs = $i
    }
  }
  /^BenchmarkHashSampleTap/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "pkts/s") htap = $i
      if ($(i + 1) == "ns/op") htapns = $i
      if ($(i + 1) == "allocs/op") htapallocs = $i
    }
  }
  /^BenchmarkServiceIngest4Conns/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "samples/s") svc = $i
      if ($(i + 1) == "ns/op") svcns = $i
    }
  }
  /^BenchmarkFleetIngest4x/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") fleet = $i
  }
  /^BenchmarkFleetScatterGather/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "ms/query") fleetq = $i
  }
  /^BenchmarkSketchAdd/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "samples/s") sketch = $i
      if ($(i + 1) == "ns/op") sketchns = $i
      if ($(i + 1) == "allocs/op") sketchallocs = $i
    }
  }
  /^BenchmarkEvictionChurn/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "samples/s") churn = $i
      if ($(i + 1) == "ns/op") churnns = $i
    }
  }
  /^BenchmarkScenarioSequential/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") seqns = $i
  }
  /^BenchmarkScenarioParallel2/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") parns2 = $i
  }
  /^BenchmarkScenarioParallel4/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") parns4 = $i
  }
  END {
    if (pkts == "") { print "bench.sh: no throughput result parsed" > "/dev/stderr"; exit 1 }
    if (ingest == "") { print "bench.sh: no collector ingest result parsed" > "/dev/stderr"; exit 1 }
    if (sweep1 == "" || sweep4 == "") { print "bench.sh: no runner scaling result parsed" > "/dev/stderr"; exit 1 }
    if (tap == "") { print "bench.sh: no shared-tap result parsed" > "/dev/stderr"; exit 1 }
    if (htap == "") { print "bench.sh: no hash-sample tap result parsed" > "/dev/stderr"; exit 1 }
    if (svc == "") { print "bench.sh: no service ingest result parsed" > "/dev/stderr"; exit 1 }
    if (fleet == "" || fleetq == "") { print "bench.sh: no fleet result parsed" > "/dev/stderr"; exit 1 }
    if (sketch == "") { print "bench.sh: no sketch ingest result parsed" > "/dev/stderr"; exit 1 }
    if (churn == "") { print "bench.sh: no eviction churn result parsed" > "/dev/stderr"; exit 1 }
    if (seqns == "" || parns2 == "" || parns4 == "") { print "bench.sh: no parallel-engine result parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"bench\": %d,\n", bench
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpus\": %s,\n", maxprocs
    printf "  \"simulator_throughput\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"pkts_per_s\": %s,\n", pkts
    printf "    \"ns_per_op\": %s,\n", ns
    printf "    \"bytes_per_op\": %s,\n", bytes
    printf "    \"allocs_per_op\": %s\n", allocs
    printf "  },\n"
    printf "  \"collector_ingest\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"samples_per_s\": %s,\n", ingest
    printf "    \"ns_per_batch\": %s\n", ingestns
    printf "  },\n"
    printf "  \"shared_tap\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"pkts_per_s\": %s,\n", tap
    printf "    \"ns_per_op\": %s,\n", tapns
    printf "    \"allocs_per_op\": %s\n", tapallocs
    printf "  },\n"
    printf "  \"hash_sample_tap\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"pkts_per_s\": %s,\n", htap
    printf "    \"ns_per_op\": %s,\n", htapns
    printf "    \"allocs_per_op\": %s\n", htapallocs
    printf "  },\n"
    printf "  \"service_ingest\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"conns\": 4,\n"
    printf "    \"samples_per_s\": %s,\n", svc
    printf "    \"ns_per_op\": %s\n", svcns
    printf "  },\n"
    printf "  \"fleet_ingest\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"instances\": 4,\n"
    printf "    \"samples_per_s\": %s\n", fleet
    printf "  },\n"
    printf "  \"fleet_query\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"instances\": 4,\n"
    printf "    \"ms_per_query\": %s\n", fleetq
    printf "  },\n"
    printf "  \"sketch_ingest\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"samples_per_s\": %s,\n", sketch
    printf "    \"ns_per_add\": %s,\n", sketchns
    printf "    \"allocs_per_add\": %s\n", sketchallocs
    printf "  },\n"
    printf "  \"eviction_churn\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"samples_per_s\": %s,\n", churn
    printf "    \"ns_per_batch\": %s\n", churnns
    printf "  },\n"
    printf "  \"parallel_sim\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"scenario\": \"default\",\n"
    printf "    \"ns_per_run_sequential\": %s,\n", seqns
    printf "    \"ns_per_run_parallel_2\": %s,\n", parns2
    printf "    \"ns_per_run_parallel_4\": %s,\n", parns4
    printf "    \"speedup_2_partitions\": %.2f,\n", seqns / parns2
    printf "    \"speedup_4_partitions\": %.2f\n", seqns / parns4
    printf "  },\n"
    printf "  \"runner_scaling\": {\n"
    printf "    \"cpus\": %s,\n", maxprocs
    printf "    \"sweep_seeds\": 8,\n"
    printf "    \"ns_per_sweep_1_worker\": %s,\n", sweep1
    printf "    \"ns_per_sweep_4_workers\": %s,\n", sweep4
    printf "    \"speedup_4_workers\": %.2f,\n", sweep1 / sweep4
    printf "    \"sweep_median_rel_err\": %s,\n", sweeperr
    printf "    \"sweep_median_rel_err_ci95\": %s\n", sweepci
    printf "  },\n"
    printf "  \"figure_metrics\": {\n"
    printf "    \"base_util\": %s,\n", base
    printf "    \"adaptive_gap\": %s,\n", gap
    printf "    \"median_rel_err_93_static\": %s\n", err
    printf "  }\n"
    printf "}\n"
  }' > "$out"

echo "wrote $out" >&2
cat "$out"
