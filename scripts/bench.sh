#!/usr/bin/env bash
# bench.sh — run the perf benchmark suite and record the result as
# BENCH_<N>.json in the repository root, starting the performance
# trajectory across PRs.
#
# Usage:
#   scripts/bench.sh        # picks the next free N (BENCH_1.json, BENCH_2.json, ...)
#   scripts/bench.sh 3      # writes/overwrites BENCH_3.json
#
# Captured: raw simulator throughput (pkts/s, ns/op, B/op, allocs/op) from
# BenchmarkSimulatorThroughput, plus the headline figure metrics from
# BenchmarkScalars (base utilization, adaptive gap, median relative error
# for static injection at 93% utilization).
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:-}"
if [ -z "$n" ]; then
  n=1
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
fi
out="BENCH_${n}.json"

echo "running benchmark suite (this takes a minute)..." >&2
raw=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$|BenchmarkScalars$' \
  -benchmem -benchtime 10x . 2>&1)

echo "$raw" | grep -E '^Benchmark' >&2

echo "$raw" | awk -v bench="$n" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  -v goversion="$(go env GOVERSION)" '
  /^BenchmarkSimulatorThroughput/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "ns/op") ns = $i
      if ($(i + 1) == "pkts/s") pkts = $i
      if ($(i + 1) == "B/op") bytes = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
  }
  /^BenchmarkScalars/ {
    for (i = 1; i < NF; i++) {
      if ($(i + 1) == "baseUtil") base = $i
      if ($(i + 1) == "adaptiveGap") gap = $i
      if ($(i + 1) == "medianRelErr@93static") err = $i
    }
  }
  END {
    if (pkts == "") { print "bench.sh: no throughput result parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"bench\": %d,\n", bench
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"simulator_throughput\": {\n"
    printf "    \"pkts_per_s\": %s,\n", pkts
    printf "    \"ns_per_op\": %s,\n", ns
    printf "    \"bytes_per_op\": %s,\n", bytes
    printf "    \"allocs_per_op\": %s\n", allocs
    printf "  },\n"
    printf "  \"figure_metrics\": {\n"
    printf "    \"base_util\": %s,\n", base
    printf "    \"adaptive_gap\": %s,\n", gap
    printf "    \"median_rel_err_93_static\": %s\n", err
    printf "  }\n"
    printf "}\n"
  }' > "$out"

echo "wrote $out" >&2
cat "$out"
