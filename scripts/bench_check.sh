#!/usr/bin/env bash
# bench_check.sh — guard against simulator-throughput regressions.
#
# Compares fresh simulator throughput (pkts/s) against the last committed
# BENCH_<N>.json (highest N) and fails when the fresh number falls more
# than 25% below the recorded one. CI's bench-smoke job runs this on every
# push; a genuine intentional regression is recorded by committing a new
# BENCH_<N>.json (scripts/bench.sh) or overridden one-off with -f.
#
# Usage:
#   scripts/bench_check.sh                 # run a short bench, then compare
#   scripts/bench_check.sh fresh.json      # compare a bench.sh-format JSON
#   scripts/bench_check.sh -f [...]        # report, but never fail
#   BENCH_CHECK_FORCE=1 scripts/bench_check.sh   # same as -f
#
# Exit codes: 0 ok / regression overridden, 1 regression, 2 usage/parse
# error.
set -euo pipefail
cd "$(dirname "$0")/.."

force="${BENCH_CHECK_FORCE:-0}"
fresh_file=""
for arg in "$@"; do
  case "$arg" in
    -f|--force) force=1 ;;
    -*) echo "bench_check: unknown flag $arg" >&2; exit 2 ;;
    *) fresh_file="$arg" ;;
  esac
done

# Threshold: fail when fresh < (100 - max_drop_pct)% of the baseline.
max_drop_pct=25

# pkts_from_json extracts simulator_throughput.pkts_per_s from a bench.sh
# JSON (no jq dependency; the simulator section is the file's first
# pkts_per_s).
pkts_from_json() {
  awk '/"pkts_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# tap_from_json extracts shared_tap.pkts_per_s (the estimator layer's
# shared dispatch throughput). Empty when the baseline predates the
# estimator layer.
tap_from_json() {
  awk '/"shared_tap"/ { intap = 1 }
       intap && /"pkts_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# service_from_json extracts service_ingest.samples_per_s (the streaming
# service's 4-connection ingest throughput). Empty when the baseline
# predates the service.
service_from_json() {
  awk '/"service_ingest"/ { insvc = 1 }
       insvc && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# fleet_from_json extracts fleet_ingest.samples_per_s (aggregate ingest
# across the 4-instance partitioned fleet). Empty when the baseline
# predates the fleet tier.
fleet_from_json() {
  awk '/"fleet_ingest"/ { infl = 1 }
       infl && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# fleetq_from_json extracts fleet_query.ms_per_query (the scatter-gather
# front-end's merged query latency; lower is better).
fleetq_from_json() {
  awk '/"fleet_query"/ { infq = 1 }
       infq && /"ms_per_query"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# sketch_from_json extracts sketch_ingest.samples_per_s (quantile-sketch
# Add throughput). Empty when the baseline predates the sketch tier.
sketch_from_json() {
  awk '/"sketch_ingest"/ { insk = 1 }
       insk && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# churn_from_json extracts eviction_churn.samples_per_s (ingest throughput
# through a capped LRU flow table under full churn).
churn_from_json() {
  awk '/"eviction_churn"/ { inch = 1 }
       inch && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

base_file=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$base_file" ]; then
  echo "bench_check: no committed BENCH_*.json baseline; nothing to compare" >&2
  exit 0
fi
base=$(pkts_from_json "$base_file")
if [ -z "$base" ]; then
  echo "bench_check: could not parse pkts_per_s from $base_file" >&2
  exit 2
fi

base_tap=$(tap_from_json "$base_file")
base_svc=$(service_from_json "$base_file")
base_fleet=$(fleet_from_json "$base_file")
base_fleetq=$(fleetq_from_json "$base_file")
base_sketch=$(sketch_from_json "$base_file")
base_churn=$(churn_from_json "$base_file")

if [ -n "$fresh_file" ]; then
  fresh=$(pkts_from_json "$fresh_file")
  fresh_tap=$(tap_from_json "$fresh_file")
  fresh_svc=$(service_from_json "$fresh_file")
  fresh_fleet=$(fleet_from_json "$fresh_file")
  fresh_fleetq=$(fleetq_from_json "$fresh_file")
  fresh_sketch=$(sketch_from_json "$fresh_file")
  fresh_churn=$(churn_from_json "$fresh_file")
  if [ -n "$base_tap" ] && [ -z "$fresh_tap" ]; then
    echo "bench_check: baseline $base_file has shared_tap but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if [ -n "$base_svc" ] && [ -z "$fresh_svc" ]; then
    echo "bench_check: baseline $base_file has service_ingest but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if [ -n "$base_fleet" ] && { [ -z "$fresh_fleet" ] || [ -z "$fresh_fleetq" ]; }; then
    echo "bench_check: baseline $base_file has fleet metrics but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if { [ -n "$base_sketch" ] && [ -z "$fresh_sketch" ]; } || { [ -n "$base_churn" ] && [ -z "$fresh_churn" ]; }; then
    echo "bench_check: baseline $base_file has bounded-aggregation metrics but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  src="$fresh_file"
else
  echo "bench_check: measuring simulator throughput (3 iterations)..." >&2
  raw=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchtime 3x . 2>&1)
  echo "$raw" | grep -E '^Benchmark' >&2 || true
  fresh=$(echo "$raw" | awk '/^BenchmarkSimulatorThroughput/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "pkts/s") print $i
  }' | tail -1)
  fresh_tap=""
  if [ -n "$base_tap" ]; then
    echo "bench_check: measuring shared-tap dispatch throughput..." >&2
    raw_tap=$(go test -run '^$' -bench 'BenchmarkSharedTap$' ./internal/measure 2>&1)
    echo "$raw_tap" | grep -E '^Benchmark' >&2 || true
    fresh_tap=$(echo "$raw_tap" | awk '/^BenchmarkSharedTap/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "pkts/s") print $i
    }' | tail -1)
    if [ -z "$fresh_tap" ]; then
      echo "bench_check: no shared-tap number parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_svc=""
  if [ -n "$base_svc" ]; then
    echo "bench_check: measuring service ingest throughput (4 conns)..." >&2
    raw_svc=$(go test -run '^$' -bench 'BenchmarkServiceIngest4Conns$' ./internal/service 2>&1)
    echo "$raw_svc" | grep -E '^Benchmark' >&2 || true
    fresh_svc=$(echo "$raw_svc" | awk '/^BenchmarkServiceIngest4Conns/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    if [ -z "$fresh_svc" ]; then
      echo "bench_check: no service ingest number parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_fleet=""
  fresh_fleetq=""
  if [ -n "$base_fleet" ]; then
    echo "bench_check: measuring fleet ingest + scatter-gather query..." >&2
    raw_fleet=$(go test -run '^$' -bench 'BenchmarkFleetIngest4x$|BenchmarkFleetScatterGather$' ./internal/fleet 2>&1)
    echo "$raw_fleet" | grep -E '^Benchmark' >&2 || true
    fresh_fleet=$(echo "$raw_fleet" | awk '/^BenchmarkFleetIngest4x/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    fresh_fleetq=$(echo "$raw_fleet" | awk '/^BenchmarkFleetScatterGather/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "ms/query") print $i
    }' | tail -1)
    if [ -z "$fresh_fleet" ] || [ -z "$fresh_fleetq" ]; then
      echo "bench_check: no fleet numbers parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_sketch=""
  if [ -n "$base_sketch" ]; then
    echo "bench_check: measuring sketch ingest throughput..." >&2
    raw_sketch=$(go test -run '^$' -bench 'BenchmarkSketchAdd$' ./internal/stats 2>&1)
    echo "$raw_sketch" | grep -E '^Benchmark' >&2 || true
    fresh_sketch=$(echo "$raw_sketch" | awk '/^BenchmarkSketchAdd/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    if [ -z "$fresh_sketch" ]; then
      echo "bench_check: no sketch ingest number parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_churn=""
  if [ -n "$base_churn" ]; then
    echo "bench_check: measuring eviction-churn throughput..." >&2
    raw_churn=$(go test -run '^$' -bench 'BenchmarkEvictionChurn$' ./internal/collector 2>&1)
    echo "$raw_churn" | grep -E '^Benchmark' >&2 || true
    fresh_churn=$(echo "$raw_churn" | awk '/^BenchmarkEvictionChurn/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    if [ -z "$fresh_churn" ]; then
      echo "bench_check: no eviction-churn number parsed from local bench" >&2
      exit 2
    fi
  fi
  src="local bench"
fi
if [ -z "$fresh" ]; then
  echo "bench_check: no throughput number parsed from $src" >&2
  exit 2
fi

# compare_lower <label> <fresh> <base> <unit>: the latency variant —
# lower is better, so the regression is fresh rising more than
# max_drop_pct above the baseline.
compare_lower() {
  awk -v label="$1" -v fresh="$2" -v base="$3" -v unit="$4" \
      -v drop="$max_drop_pct" -v basefile="$base_file" -v force="$force" 'BEGIN {
    ceil = base * (100 + drop) / 100
    ratio = base > 0 ? 100 * fresh / base : 0
    printf "bench_check: %s fresh %.3f %s vs baseline %.3f %s (%s) = %.1f%%\n",
      label, fresh, unit, base, unit, basefile, ratio
    if (fresh > ceil) {
      printf "bench_check: REGRESSION: %s above the %d%%-rise ceiling (%.3f %s; lower is better)\n", label, drop, ceil, unit
      if (force == "1") {
        print "bench_check: override in effect (-f / BENCH_CHECK_FORCE=1); not failing"
        exit 0
      }
      print "bench_check: if intentional, commit a new BENCH_<N>.json (scripts/bench.sh) or rerun with -f"
      exit 1
    }
  }'
}

# compare <label> <fresh> <base> [unit]: prints the ratio, returns 1 on a
# regression past the floor (unless forced).
compare() {
  awk -v label="$1" -v fresh="$2" -v base="$3" -v unit="${4:-pkts/s}" \
      -v drop="$max_drop_pct" -v basefile="$base_file" -v force="$force" 'BEGIN {
    floor = base * (100 - drop) / 100
    ratio = base > 0 ? 100 * fresh / base : 0
    printf "bench_check: %s fresh %.0f %s vs baseline %.0f %s (%s) = %.1f%%\n",
      label, fresh, unit, base, unit, basefile, ratio
    if (fresh < floor) {
      printf "bench_check: REGRESSION: %s below the %d%%-drop floor (%.0f %s)\n", label, drop, floor, unit
      if (force == "1") {
        print "bench_check: override in effect (-f / BENCH_CHECK_FORCE=1); not failing"
        exit 0
      }
      print "bench_check: if intentional, commit a new BENCH_<N>.json (scripts/bench.sh) or rerun with -f"
      exit 1
    }
  }'
}

status=0
compare "simulator" "$fresh" "$base" || status=1
if [ -n "$base_tap" ] && [ -n "$fresh_tap" ]; then
  compare "shared-tap" "$fresh_tap" "$base_tap" || status=1
fi
if [ -n "$base_svc" ] && [ -n "$fresh_svc" ]; then
  compare "service-ingest" "$fresh_svc" "$base_svc" "samples/s" || status=1
  # The soak acceptance floor is absolute, not relative: the service must
  # sustain >= 1M samples/s over 4 connections on any box this runs on.
  awk -v svc="$fresh_svc" -v force="$force" 'BEGIN {
    if (svc < 1e6) {
      printf "bench_check: service ingest %.0f samples/s below the 1M samples/s soak floor\n", svc
      if (force == "1") { print "bench_check: override in effect; not failing"; exit 0 }
      exit 1
    }
  }' || status=1
fi
if [ -n "$base_fleet" ] && [ -n "$fresh_fleet" ]; then
  compare "fleet-ingest" "$fresh_fleet" "$base_fleet" "samples/s" || status=1
fi
if [ -n "$base_fleetq" ] && [ -n "$fresh_fleetq" ]; then
  compare_lower "fleet-query" "$fresh_fleetq" "$base_fleetq" "ms/query" || status=1
fi
if [ -n "$base_sketch" ] && [ -n "$fresh_sketch" ]; then
  compare "sketch-ingest" "$fresh_sketch" "$base_sketch" "samples/s" || status=1
fi
if [ -n "$base_churn" ] && [ -n "$fresh_churn" ]; then
  compare "eviction-churn" "$fresh_churn" "$base_churn" "samples/s" || status=1
fi
if [ "$status" -eq 0 ]; then
  echo "bench_check: ok"
fi
exit "$status"
