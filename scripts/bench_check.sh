#!/usr/bin/env bash
# bench_check.sh — guard against simulator-throughput regressions.
#
# Compares fresh simulator throughput (pkts/s) against the last committed
# BENCH_<N>.json (highest N) and fails when the fresh number falls more
# than 25% below the recorded one. Also gates simulator allocs/op (lower
# is better), the hash-sample tap (relative pkts/s plus an absolute
# 0-allocs/op gate on the keyed sampling path) and the speedup ratios (runner sweep at 4 workers, parallel
# engine at 2 partitions); speedup gates are skipped — with the reason
# logged — when either side was measured with fewer CPUs than the
# benchmark's workers, since such a ratio carries no scaling signal.
# CI's bench-smoke job runs this on every
# push; a genuine intentional regression is recorded by committing a new
# BENCH_<N>.json (scripts/bench.sh) or overridden one-off with -f.
#
# Usage:
#   scripts/bench_check.sh                 # run a short bench, then compare
#   scripts/bench_check.sh fresh.json      # compare a bench.sh-format JSON
#   scripts/bench_check.sh -f [...]        # report, but never fail
#   BENCH_CHECK_FORCE=1 scripts/bench_check.sh   # same as -f
#
# Exit codes: 0 ok / regression overridden, 1 regression, 2 usage/parse
# error.
set -euo pipefail
cd "$(dirname "$0")/.."

force="${BENCH_CHECK_FORCE:-0}"
fresh_file=""
for arg in "$@"; do
  case "$arg" in
    -f|--force) force=1 ;;
    -*) echo "bench_check: unknown flag $arg" >&2; exit 2 ;;
    *) fresh_file="$arg" ;;
  esac
done

# Threshold: fail when fresh < (100 - max_drop_pct)% of the baseline.
max_drop_pct=25

# pkts_from_json extracts simulator_throughput.pkts_per_s from a bench.sh
# JSON (no jq dependency; the simulator section is the file's first
# pkts_per_s).
pkts_from_json() {
  awk '/"pkts_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# tap_from_json extracts shared_tap.pkts_per_s (the estimator layer's
# shared dispatch throughput). Empty when the baseline predates the
# estimator layer.
tap_from_json() {
  awk '/"shared_tap"/ { intap = 1 }
       intap && /"pkts_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# hashtap_from_json extracts hash_sample_tap.pkts_per_s (the secret-key
# sampling tap's per-packet throughput). Empty when the baseline predates
# the adversarial scenario family.
hashtap_from_json() {
  awk '/"hash_sample_tap"/ { inht = 1 }
       inht && /"pkts_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# hashtapallocs_from_json extracts hash_sample_tap.allocs_per_op — gated
# at an absolute zero: a single allocation on the keyed sampling path
# would wreck the shared-tap hot loop.
hashtapallocs_from_json() {
  awk '/"hash_sample_tap"/ { inht = 1 }
       inht && /"allocs_per_op"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# service_from_json extracts service_ingest.samples_per_s (the streaming
# service's 4-connection ingest throughput). Empty when the baseline
# predates the service.
service_from_json() {
  awk '/"service_ingest"/ { insvc = 1 }
       insvc && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# fleet_from_json extracts fleet_ingest.samples_per_s (aggregate ingest
# across the 4-instance partitioned fleet). Empty when the baseline
# predates the fleet tier.
fleet_from_json() {
  awk '/"fleet_ingest"/ { infl = 1 }
       infl && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# fleetq_from_json extracts fleet_query.ms_per_query (the scatter-gather
# front-end's merged query latency; lower is better).
fleetq_from_json() {
  awk '/"fleet_query"/ { infq = 1 }
       infq && /"ms_per_query"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# sketch_from_json extracts sketch_ingest.samples_per_s (quantile-sketch
# Add throughput). Empty when the baseline predates the sketch tier.
sketch_from_json() {
  awk '/"sketch_ingest"/ { insk = 1 }
       insk && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# churn_from_json extracts eviction_churn.samples_per_s (ingest throughput
# through a capped LRU flow table under full churn).
churn_from_json() {
  awk '/"eviction_churn"/ { inch = 1 }
       inch && /"samples_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# allocs_from_json extracts simulator_throughput.allocs_per_op (the
# simulator section is the file's first allocs_per_op). Lower is better;
# gated so a hot-path allocation creeping back in fails loudly.
allocs_from_json() {
  awk '/"simulator_throughput"/ { insim = 1 }
       insim && /"allocs_per_op"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# sweepspeed_from_json extracts runner_scaling.speedup_4_workers (the
# 8-seed sweep's 1-worker/4-worker wall-clock ratio).
sweepspeed_from_json() {
  awk '/"runner_scaling"/ { inrs = 1 }
       inrs && /"speedup_4_workers"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# parspeed_from_json extracts parallel_sim.speedup_2_partitions (the
# conservative parallel engine's 2-partition speedup over sequential).
# Empty when the baseline predates the parallel engine.
parspeed_from_json() {
  awk '/"parallel_sim"/ { inps = 1 }
       inps && /"speedup_2_partitions"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

# seccpus_from_json <file> <section> extracts the CPU count a section's
# numbers were measured with, falling back to the file's top-level "cpus"
# for baselines that predate per-section recording. Speedup ratios are
# meaningless on a box with fewer CPUs than workers, so gates consult this
# before failing anyone.
seccpus_from_json() {
  c=$(awk -v sec="\"$2\"" '$0 ~ sec { insec = 1 }
       insec && /"cpus"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' "$1")
  if [ -z "$c" ]; then
    c=$(awk '/"cpus"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' "$1")
  fi
  echo "${c:-1}"
}

base_file=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$base_file" ]; then
  echo "bench_check: no committed BENCH_*.json baseline; nothing to compare" >&2
  exit 0
fi
base=$(pkts_from_json "$base_file")
if [ -z "$base" ]; then
  echo "bench_check: could not parse pkts_per_s from $base_file" >&2
  exit 2
fi

base_tap=$(tap_from_json "$base_file")
base_hashtap=$(hashtap_from_json "$base_file")
base_svc=$(service_from_json "$base_file")
base_fleet=$(fleet_from_json "$base_file")
base_fleetq=$(fleetq_from_json "$base_file")
base_sketch=$(sketch_from_json "$base_file")
base_churn=$(churn_from_json "$base_file")
base_allocs=$(allocs_from_json "$base_file")
base_sweep=$(sweepspeed_from_json "$base_file")
base_parspeed=$(parspeed_from_json "$base_file")
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

if [ -n "$fresh_file" ]; then
  fresh=$(pkts_from_json "$fresh_file")
  fresh_tap=$(tap_from_json "$fresh_file")
  fresh_hashtap=$(hashtap_from_json "$fresh_file")
  fresh_hashtap_allocs=$(hashtapallocs_from_json "$fresh_file")
  fresh_svc=$(service_from_json "$fresh_file")
  fresh_fleet=$(fleet_from_json "$fresh_file")
  fresh_fleetq=$(fleetq_from_json "$fresh_file")
  fresh_sketch=$(sketch_from_json "$fresh_file")
  fresh_churn=$(churn_from_json "$fresh_file")
  fresh_allocs=$(allocs_from_json "$fresh_file")
  fresh_sweep=$(sweepspeed_from_json "$fresh_file")
  fresh_parspeed=$(parspeed_from_json "$fresh_file")
  # Speedup gates judge the fresh file by the CPUs it was measured with,
  # not this box's.
  sweep_cpus=$(seccpus_from_json "$fresh_file" runner_scaling)
  par_cpus=$(seccpus_from_json "$fresh_file" parallel_sim)
  if [ -n "$base_tap" ] && [ -z "$fresh_tap" ]; then
    echo "bench_check: baseline $base_file has shared_tap but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if [ -n "$base_hashtap" ] && [ -z "$fresh_hashtap" ]; then
    echo "bench_check: baseline $base_file has hash_sample_tap but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if [ -n "$base_svc" ] && [ -z "$fresh_svc" ]; then
    echo "bench_check: baseline $base_file has service_ingest but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if [ -n "$base_fleet" ] && { [ -z "$fresh_fleet" ] || [ -z "$fresh_fleetq" ]; }; then
    echo "bench_check: baseline $base_file has fleet metrics but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if { [ -n "$base_sketch" ] && [ -z "$fresh_sketch" ]; } || { [ -n "$base_churn" ] && [ -z "$fresh_churn" ]; }; then
    echo "bench_check: baseline $base_file has bounded-aggregation metrics but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if [ -n "$base_allocs" ] && [ -z "$fresh_allocs" ]; then
    echo "bench_check: baseline $base_file has allocs_per_op but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  if [ -n "$base_parspeed" ] && [ -z "$fresh_parspeed" ]; then
    echo "bench_check: baseline $base_file has parallel_sim but $fresh_file does not; refusing to skip the gate" >&2
    exit 2
  fi
  src="$fresh_file"
else
  echo "bench_check: measuring simulator throughput (3 iterations)..." >&2
  raw=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchmem -benchtime 3x . 2>&1)
  echo "$raw" | grep -E '^Benchmark' >&2 || true
  fresh=$(echo "$raw" | awk '/^BenchmarkSimulatorThroughput/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "pkts/s") print $i
  }' | tail -1)
  fresh_allocs=$(echo "$raw" | awk '/^BenchmarkSimulatorThroughput/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "allocs/op") print $i
  }' | tail -1)
  if [ -n "$base_allocs" ] && [ -z "$fresh_allocs" ]; then
    echo "bench_check: no allocs/op number parsed from local bench" >&2
    exit 2
  fi
  fresh_tap=""
  if [ -n "$base_tap" ]; then
    echo "bench_check: measuring shared-tap dispatch throughput..." >&2
    raw_tap=$(go test -run '^$' -bench 'BenchmarkSharedTap$' ./internal/measure 2>&1)
    echo "$raw_tap" | grep -E '^Benchmark' >&2 || true
    fresh_tap=$(echo "$raw_tap" | awk '/^BenchmarkSharedTap/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "pkts/s") print $i
    }' | tail -1)
    if [ -z "$fresh_tap" ]; then
      echo "bench_check: no shared-tap number parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_hashtap=""
  fresh_hashtap_allocs=""
  if [ -n "$base_hashtap" ]; then
    echo "bench_check: measuring hash-sample tap throughput..." >&2
    raw_htap=$(go test -run '^$' -bench 'BenchmarkHashSampleTap$' -benchmem ./internal/measure 2>&1)
    echo "$raw_htap" | grep -E '^Benchmark' >&2 || true
    fresh_hashtap=$(echo "$raw_htap" | awk '/^BenchmarkHashSampleTap/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "pkts/s") print $i
    }' | tail -1)
    fresh_hashtap_allocs=$(echo "$raw_htap" | awk '/^BenchmarkHashSampleTap/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "allocs/op") print $i
    }' | tail -1)
    if [ -z "$fresh_hashtap" ] || [ -z "$fresh_hashtap_allocs" ]; then
      echo "bench_check: no hash-sample tap numbers parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_svc=""
  if [ -n "$base_svc" ]; then
    echo "bench_check: measuring service ingest throughput (4 conns)..." >&2
    raw_svc=$(go test -run '^$' -bench 'BenchmarkServiceIngest4Conns$' ./internal/service 2>&1)
    echo "$raw_svc" | grep -E '^Benchmark' >&2 || true
    fresh_svc=$(echo "$raw_svc" | awk '/^BenchmarkServiceIngest4Conns/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    if [ -z "$fresh_svc" ]; then
      echo "bench_check: no service ingest number parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_fleet=""
  fresh_fleetq=""
  if [ -n "$base_fleet" ]; then
    echo "bench_check: measuring fleet ingest + scatter-gather query..." >&2
    raw_fleet=$(go test -run '^$' -bench 'BenchmarkFleetIngest4x$|BenchmarkFleetScatterGather$' ./internal/fleet 2>&1)
    echo "$raw_fleet" | grep -E '^Benchmark' >&2 || true
    fresh_fleet=$(echo "$raw_fleet" | awk '/^BenchmarkFleetIngest4x/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    fresh_fleetq=$(echo "$raw_fleet" | awk '/^BenchmarkFleetScatterGather/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "ms/query") print $i
    }' | tail -1)
    if [ -z "$fresh_fleet" ] || [ -z "$fresh_fleetq" ]; then
      echo "bench_check: no fleet numbers parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_sketch=""
  if [ -n "$base_sketch" ]; then
    echo "bench_check: measuring sketch ingest throughput..." >&2
    raw_sketch=$(go test -run '^$' -bench 'BenchmarkSketchAdd$' ./internal/stats 2>&1)
    echo "$raw_sketch" | grep -E '^Benchmark' >&2 || true
    fresh_sketch=$(echo "$raw_sketch" | awk '/^BenchmarkSketchAdd/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    if [ -z "$fresh_sketch" ]; then
      echo "bench_check: no sketch ingest number parsed from local bench" >&2
      exit 2
    fi
  fi
  fresh_churn=""
  if [ -n "$base_churn" ]; then
    echo "bench_check: measuring eviction-churn throughput..." >&2
    raw_churn=$(go test -run '^$' -bench 'BenchmarkEvictionChurn$' ./internal/collector 2>&1)
    echo "$raw_churn" | grep -E '^Benchmark' >&2 || true
    fresh_churn=$(echo "$raw_churn" | awk '/^BenchmarkEvictionChurn/ {
      for (i = 1; i < NF; i++) if ($(i + 1) == "samples/s") print $i
    }' | tail -1)
    if [ -z "$fresh_churn" ]; then
      echo "bench_check: no eviction-churn number parsed from local bench" >&2
      exit 2
    fi
  fi
  # Speedup measurements only make sense when this box has at least as many
  # CPUs as the benchmark's workers/partitions; on a smaller box we skip the
  # measurement (and so the gate) with the reason on record.
  fresh_sweep=""
  sweep_cpus="$ncpu"
  if [ -n "$base_sweep" ]; then
    if [ "$ncpu" -lt 4 ]; then
      echo "bench_check: skipping runner-scaling speedup gate: $ncpu CPUs < 4 workers (nothing to scale onto)" >&2
    else
      echo "bench_check: measuring runner sweep scaling (1 vs 4 workers)..." >&2
      raw_sweep=$(go test -run '^$' -bench 'BenchmarkRunnerSweep[14]$' -benchtime 3x . 2>&1)
      echo "$raw_sweep" | grep -E '^Benchmark' >&2 || true
      s1=$(echo "$raw_sweep" | awk '/^BenchmarkRunnerSweep1/ {
        for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") print $i
      }' | tail -1)
      s4=$(echo "$raw_sweep" | awk '/^BenchmarkRunnerSweep4/ {
        for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") print $i
      }' | tail -1)
      if [ -z "$s1" ] || [ -z "$s4" ]; then
        echo "bench_check: no runner-scaling numbers parsed from local bench" >&2
        exit 2
      fi
      fresh_sweep=$(awk -v a="$s1" -v b="$s4" 'BEGIN { printf "%.2f", a / b }')
    fi
  fi
  fresh_parspeed=""
  par_cpus="$ncpu"
  if [ -n "$base_parspeed" ]; then
    if [ "$ncpu" -lt 2 ]; then
      echo "bench_check: skipping parallel-engine speedup gate: $ncpu CPUs < 2 partitions (nothing to scale onto)" >&2
    else
      echo "bench_check: measuring parallel-engine speedup (2 partitions)..." >&2
      raw_par=$(go test -run '^$' -bench 'BenchmarkScenarioSequential$|BenchmarkScenarioParallel2$' -benchtime 2x . 2>&1)
      echo "$raw_par" | grep -E '^Benchmark' >&2 || true
      pseq=$(echo "$raw_par" | awk '/^BenchmarkScenarioSequential/ {
        for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") print $i
      }' | tail -1)
      ppar=$(echo "$raw_par" | awk '/^BenchmarkScenarioParallel2/ {
        for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") print $i
      }' | tail -1)
      if [ -z "$pseq" ] || [ -z "$ppar" ]; then
        echo "bench_check: no parallel-engine numbers parsed from local bench" >&2
        exit 2
      fi
      fresh_parspeed=$(awk -v a="$pseq" -v b="$ppar" 'BEGIN { printf "%.2f", a / b }')
    fi
  fi
  src="local bench"
fi
if [ -z "$fresh" ]; then
  echo "bench_check: no throughput number parsed from $src" >&2
  exit 2
fi

# compare_lower <label> <fresh> <base> <unit>: the latency variant —
# lower is better, so the regression is fresh rising more than
# max_drop_pct above the baseline.
compare_lower() {
  awk -v label="$1" -v fresh="$2" -v base="$3" -v unit="$4" \
      -v drop="$max_drop_pct" -v basefile="$base_file" -v force="$force" 'BEGIN {
    ceil = base * (100 + drop) / 100
    ratio = base > 0 ? 100 * fresh / base : 0
    printf "bench_check: %s fresh %.3f %s vs baseline %.3f %s (%s) = %.1f%%\n",
      label, fresh, unit, base, unit, basefile, ratio
    if (fresh > ceil) {
      printf "bench_check: REGRESSION: %s above the %d%%-rise ceiling (%.3f %s; lower is better)\n", label, drop, ceil, unit
      if (force == "1") {
        print "bench_check: override in effect (-f / BENCH_CHECK_FORCE=1); not failing"
        exit 0
      }
      print "bench_check: if intentional, commit a new BENCH_<N>.json (scripts/bench.sh) or rerun with -f"
      exit 1
    }
  }'
}

# compare <label> <fresh> <base> [unit]: prints the ratio, returns 1 on a
# regression past the floor (unless forced).
compare() {
  awk -v label="$1" -v fresh="$2" -v base="$3" -v unit="${4:-pkts/s}" \
      -v drop="$max_drop_pct" -v basefile="$base_file" -v force="$force" 'BEGIN {
    floor = base * (100 - drop) / 100
    ratio = base > 0 ? 100 * fresh / base : 0
    printf "bench_check: %s fresh %.0f %s vs baseline %.0f %s (%s) = %.1f%%\n",
      label, fresh, unit, base, unit, basefile, ratio
    if (fresh < floor) {
      printf "bench_check: REGRESSION: %s below the %d%%-drop floor (%.0f %s)\n", label, drop, floor, unit
      if (force == "1") {
        print "bench_check: override in effect (-f / BENCH_CHECK_FORCE=1); not failing"
        exit 0
      }
      print "bench_check: if intentional, commit a new BENCH_<N>.json (scripts/bench.sh) or rerun with -f"
      exit 1
    }
  }'
}

status=0
compare "simulator" "$fresh" "$base" || status=1
if [ -n "$base_tap" ] && [ -n "$fresh_tap" ]; then
  compare "shared-tap" "$fresh_tap" "$base_tap" || status=1
fi
if [ -n "$base_hashtap" ] && [ -n "$fresh_hashtap" ]; then
  compare "hash-sample-tap" "$fresh_hashtap" "$base_hashtap" || status=1
  # The allocation gate is absolute, not relative: the keyed sampling path
  # must stay at exactly zero allocations per packet.
  if [ -n "$fresh_hashtap_allocs" ]; then
    awk -v a="$fresh_hashtap_allocs" -v force="$force" 'BEGIN {
      printf "bench_check: hash-sample-tap %.0f allocs/op (gate: 0)\n", a
      if (a + 0 != 0) {
        print "bench_check: REGRESSION: hash-sample tap allocates on the per-packet path"
        if (force == "1") { print "bench_check: override in effect; not failing"; exit 0 }
        exit 1
      }
    }' || status=1
  fi
fi
if [ -n "$base_svc" ] && [ -n "$fresh_svc" ]; then
  compare "service-ingest" "$fresh_svc" "$base_svc" "samples/s" || status=1
  # The soak acceptance floor is absolute, not relative: the service must
  # sustain >= 1M samples/s over 4 connections on any box this runs on.
  awk -v svc="$fresh_svc" -v force="$force" 'BEGIN {
    if (svc < 1e6) {
      printf "bench_check: service ingest %.0f samples/s below the 1M samples/s soak floor\n", svc
      if (force == "1") { print "bench_check: override in effect; not failing"; exit 0 }
      exit 1
    }
  }' || status=1
fi
if [ -n "$base_fleet" ] && [ -n "$fresh_fleet" ]; then
  compare "fleet-ingest" "$fresh_fleet" "$base_fleet" "samples/s" || status=1
fi
if [ -n "$base_fleetq" ] && [ -n "$fresh_fleetq" ]; then
  compare_lower "fleet-query" "$fresh_fleetq" "$base_fleetq" "ms/query" || status=1
fi
if [ -n "$base_sketch" ] && [ -n "$fresh_sketch" ]; then
  compare "sketch-ingest" "$fresh_sketch" "$base_sketch" "samples/s" || status=1
fi
if [ -n "$base_churn" ] && [ -n "$fresh_churn" ]; then
  compare "eviction-churn" "$fresh_churn" "$base_churn" "samples/s" || status=1
fi
if [ -n "$base_allocs" ] && [ -n "$fresh_allocs" ]; then
  compare_lower "simulator-allocs" "$fresh_allocs" "$base_allocs" "allocs/op" || status=1
fi
# Speedup gates. A ratio measured with fewer CPUs than workers/partitions
# carries no scaling signal, so both the fresh and the baseline side must
# have been measured on enough cores; otherwise the gate is skipped with
# the reason logged rather than failing an honest single-core run.
if [ -n "$base_sweep" ] && [ -n "$fresh_sweep" ]; then
  base_sweep_cpus=$(seccpus_from_json "$base_file" runner_scaling)
  if [ "$sweep_cpus" -lt 4 ]; then
    echo "bench_check: skipping runner-scaling speedup gate: measured on $sweep_cpus CPUs < 4 workers"
  elif [ "$base_sweep_cpus" -lt 4 ]; then
    echo "bench_check: skipping runner-scaling speedup gate: baseline $base_file measured on $base_sweep_cpus CPUs < 4 workers (no scaling baseline)"
  else
    compare "runner-speedup" "$fresh_sweep" "$base_sweep" "x" || status=1
  fi
fi
if [ -n "$fresh_parspeed" ]; then
  if [ "$par_cpus" -lt 2 ]; then
    echo "bench_check: skipping parallel-engine speedup gate: measured on $par_cpus CPUs < 2 partitions"
  else
    # Absolute floor from the acceptance bar: the conservative engine must
    # deliver >= 1.7x at 2 partitions whenever 2 cores exist to run on.
    awk -v sp="$fresh_parspeed" -v force="$force" 'BEGIN {
      printf "bench_check: parallel-engine speedup %.2fx at 2 partitions (floor 1.70x)\n", sp
      if (sp < 1.7) {
        print "bench_check: REGRESSION: parallel-engine speedup below the 1.7x floor"
        if (force == "1") { print "bench_check: override in effect; not failing"; exit 0 }
        exit 1
      }
    }' || status=1
    if [ -n "$base_parspeed" ]; then
      base_par_cpus=$(seccpus_from_json "$base_file" parallel_sim)
      if [ "$base_par_cpus" -lt 2 ]; then
        echo "bench_check: skipping parallel-engine relative gate: baseline $base_file measured on $base_par_cpus CPUs < 2 partitions (no scaling baseline)"
      else
        compare "parallel-speedup" "$fresh_parspeed" "$base_parspeed" "x" || status=1
      fi
    fi
  fi
fi
if [ "$status" -eq 0 ]; then
  echo "bench_check: ok"
fi
exit "$status"
