#!/usr/bin/env bash
# bench_check.sh — guard against simulator-throughput regressions.
#
# Compares fresh simulator throughput (pkts/s) against the last committed
# BENCH_<N>.json (highest N) and fails when the fresh number falls more
# than 25% below the recorded one. CI's bench-smoke job runs this on every
# push; a genuine intentional regression is recorded by committing a new
# BENCH_<N>.json (scripts/bench.sh) or overridden one-off with -f.
#
# Usage:
#   scripts/bench_check.sh                 # run a short bench, then compare
#   scripts/bench_check.sh fresh.json      # compare a bench.sh-format JSON
#   scripts/bench_check.sh -f [...]        # report, but never fail
#   BENCH_CHECK_FORCE=1 scripts/bench_check.sh   # same as -f
#
# Exit codes: 0 ok / regression overridden, 1 regression, 2 usage/parse
# error.
set -euo pipefail
cd "$(dirname "$0")/.."

force="${BENCH_CHECK_FORCE:-0}"
fresh_file=""
for arg in "$@"; do
  case "$arg" in
    -f|--force) force=1 ;;
    -*) echo "bench_check: unknown flag $arg" >&2; exit 2 ;;
    *) fresh_file="$arg" ;;
  esac
done

# Threshold: fail when fresh < (100 - max_drop_pct)% of the baseline.
max_drop_pct=25

# pkts_from_json extracts simulator_throughput.pkts_per_s from a bench.sh
# JSON (no jq dependency).
pkts_from_json() {
  awk '/"pkts_per_s"/ { gsub(/[^0-9.eE+-]/, "", $2); print $2; exit }' "$1"
}

base_file=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)
if [ -z "$base_file" ]; then
  echo "bench_check: no committed BENCH_*.json baseline; nothing to compare" >&2
  exit 0
fi
base=$(pkts_from_json "$base_file")
if [ -z "$base" ]; then
  echo "bench_check: could not parse pkts_per_s from $base_file" >&2
  exit 2
fi

if [ -n "$fresh_file" ]; then
  fresh=$(pkts_from_json "$fresh_file")
  src="$fresh_file"
else
  echo "bench_check: measuring simulator throughput (3 iterations)..." >&2
  raw=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchtime 3x . 2>&1)
  echo "$raw" | grep -E '^Benchmark' >&2 || true
  fresh=$(echo "$raw" | awk '/^BenchmarkSimulatorThroughput/ {
    for (i = 1; i < NF; i++) if ($(i + 1) == "pkts/s") print $i
  }' | tail -1)
  src="local bench"
fi
if [ -z "$fresh" ]; then
  echo "bench_check: no throughput number parsed from $src" >&2
  exit 2
fi

awk -v fresh="$fresh" -v base="$base" -v drop="$max_drop_pct" \
    -v basefile="$base_file" -v force="$force" 'BEGIN {
  floor = base * (100 - drop) / 100
  ratio = base > 0 ? 100 * fresh / base : 0
  printf "bench_check: fresh %.0f pkts/s vs baseline %.0f pkts/s (%s) = %.1f%%\n",
    fresh, base, basefile, ratio
  if (fresh < floor) {
    printf "bench_check: REGRESSION: below the %d%%-drop floor (%.0f pkts/s)\n", drop, floor
    if (force == "1") {
      print "bench_check: override in effect (-f / BENCH_CHECK_FORCE=1); not failing"
      exit 0
    }
    print "bench_check: if intentional, commit a new BENCH_<N>.json (scripts/bench.sh) or rerun with -f"
    exit 1
  }
  print "bench_check: ok"
}'
